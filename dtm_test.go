package dtmsched_test

import (
	"fmt"
	"strings"
	"testing"

	dtm "dtmsched"
)

func TestEveryAlgorithmOnItsTopology(t *testing.T) {
	cases := []struct {
		name string
		sys  *dtm.System
		alg  dtm.Algorithm
	}{
		{"clique/greedy", dtm.NewCliqueSystem(32, dtm.Uniform(8, 2)), dtm.AlgGreedy},
		{"clique/auto", dtm.NewCliqueSystem(32, dtm.Uniform(8, 2)), dtm.AlgAuto},
		{"line/line", dtm.NewLineSystem(64, dtm.Uniform(16, 2)), dtm.AlgLine},
		{"line/auto", dtm.NewLineSystem(64, dtm.Uniform(16, 2)), dtm.AlgAuto},
		{"grid/grid", dtm.NewGridSystem(8, dtm.Uniform(8, 2)), dtm.AlgGrid},
		{"grid/auto", dtm.NewGridSystem(8, dtm.Uniform(8, 2)), dtm.AlgAuto},
		{"hypercube/greedy", dtm.NewHypercubeSystem(5, dtm.Uniform(8, 2)), dtm.AlgGreedy},
		{"hypercube/auto", dtm.NewHypercubeSystem(5, dtm.Uniform(8, 2)), dtm.AlgAuto},
		{"butterfly/greedy", dtm.NewButterflySystem(3, dtm.Uniform(8, 2)), dtm.AlgGreedy},
		{"torus/greedy", dtm.NewTorusSystem(6, 6, dtm.Uniform(8, 2)), dtm.AlgGreedy},
		{"cluster/auto-sel", dtm.NewClusterSystem(4, 6, 8, dtm.Uniform(8, 2)), dtm.AlgCluster},
		{"cluster/a1", dtm.NewClusterSystem(4, 6, 8, dtm.Uniform(8, 2)), dtm.AlgClusterGreedy},
		{"cluster/a2", dtm.NewClusterSystem(4, 6, 8, dtm.Uniform(8, 2)), dtm.AlgClusterRandom},
		{"star/auto-sel", dtm.NewStarSystem(4, 7, dtm.Uniform(8, 2)), dtm.AlgStar},
		{"star/a1", dtm.NewStarSystem(4, 7, dtm.Uniform(8, 2)), dtm.AlgStarGreedy},
		{"star/a2", dtm.NewStarSystem(4, 7, dtm.Uniform(8, 2)), dtm.AlgStarRandom},
		{"fogcloud/hier", dtm.NewFogCloudSystem([]int{3, 4}, []int64{6, 1}, dtm.Uniform(12, 2)), dtm.AlgHier},
		{"fogcloud/auto", dtm.NewFogCloudSystem([]int{3, 4}, []int64{6, 1}, dtm.Uniform(12, 2)), dtm.AlgAuto},
		{"fogcloud/tier2", dtm.NewFogCloudSystem([]int{2, 2, 2}, []int64{8, 2, 1}, dtm.Uniform(10, 2),
			dtm.HierTier(2), dtm.HierShardWorkers(2)), dtm.AlgHier},
		{"fogcloud/greedy", dtm.NewFogCloudSystem([]int{3, 4}, []int64{6, 1}, dtm.Uniform(12, 2)), dtm.AlgGreedy},
		{"baseline/seq", dtm.NewCliqueSystem(16, dtm.Uniform(8, 2)), dtm.AlgSequential},
		{"baseline/list", dtm.NewCliqueSystem(16, dtm.Uniform(8, 2)), dtm.AlgList},
		{"baseline/random", dtm.NewCliqueSystem(16, dtm.Uniform(8, 2)), dtm.AlgRandomOrder},
		{"zipf", dtm.NewCliqueSystem(32, dtm.Zipf(16, 2)), dtm.AlgGreedy},
		{"hotspot", dtm.NewCliqueSystem(32, dtm.Hotspot(16, 2)), dtm.AlgGreedy},
		{"single-object", dtm.NewLineSystem(16, dtm.SingleObject()), dtm.AlgLine},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.sys.Run(tc.alg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Makespan < rep.LowerBound {
				t.Fatalf("makespan %d below certified lower bound %d — a bound is unsound",
					rep.Makespan, rep.LowerBound)
			}
			if rep.Ratio < 1.0-1e-9 {
				t.Fatalf("ratio %v < 1", rep.Ratio)
			}
			if rep.Algorithm == "" || rep.Topology == "" {
				t.Fatalf("report incomplete: %+v", rep)
			}
			if !strings.Contains(rep.String(), rep.Topology) {
				t.Fatal("report String() missing topology")
			}
		})
	}
}

func TestAlgorithmTopologyMismatch(t *testing.T) {
	sys := dtm.NewCliqueSystem(8, dtm.Uniform(4, 1))
	for _, alg := range []dtm.Algorithm{dtm.AlgLine, dtm.AlgGrid, dtm.AlgCluster, dtm.AlgStar} {
		if _, err := sys.Run(alg); err == nil {
			t.Fatalf("%s accepted a clique system", alg)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	sys := dtm.NewCliqueSystem(8, dtm.Uniform(4, 1))
	if _, err := sys.Run("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, err := dtm.NewGridSystem(8, dtm.Uniform(8, 2), dtm.Seed(5)).Run(dtm.AlgGrid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dtm.NewGridSystem(8, dtm.Uniform(8, 2), dtm.Seed(5)).Run(dtm.AlgGrid)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.CommCost != b.CommCost {
		t.Fatalf("same seed, different outcome: %v vs %v", a, b)
	}
	c, err := dtm.NewGridSystem(8, dtm.Uniform(8, 2), dtm.Seed(6)).Run(dtm.AlgGrid)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == c.Makespan && a.CommCost == c.CommCost {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestPlacementOptions(t *testing.T) {
	for _, opt := range []dtm.Option{dtm.PlaceFirstUser(), dtm.PlaceRandomNode()} {
		sys := dtm.NewCliqueSystem(16, dtm.Uniform(8, 2), opt)
		if _, err := sys.Run(dtm.AlgGreedy); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocalizedWorkload(t *testing.T) {
	mk := func(workers int) *dtm.System {
		return dtm.NewFogCloudSystem([]int{4, 8}, []int64{8, 1}, dtm.Localized(64, 2, 0.9),
			dtm.Seed(42), dtm.HierShardWorkers(workers))
	}
	r1, err := mk(1).Run(dtm.AlgHier)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := mk(8).Run(dtm.AlgHier)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r8.Makespan || r1.CommCost != r8.CommCost {
		t.Fatalf("shard-worker counts diverged: makespan %d vs %d, comm %d vs %d",
			r1.Makespan, r8.Makespan, r1.CommCost, r8.CommCost)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Localized on a clique should panic at construction")
		}
		if !strings.Contains(strings.ToLower(fmt.Sprint(r)), "fog") {
			t.Fatalf("panic message %v does not name the fog–cloud requirement", r)
		}
	}()
	dtm.NewCliqueSystem(16, dtm.Localized(16, 2, 0.5))
}

func TestSystemAccessors(t *testing.T) {
	sys := dtm.NewStarSystem(3, 5, dtm.Uniform(6, 2))
	if sys.NumNodes() != 16 || sys.NumTxns() != 16 || sys.NumObjects() != 6 {
		t.Fatalf("accessors wrong: n=%d txns=%d w=%d", sys.NumNodes(), sys.NumTxns(), sys.NumObjects())
	}
	if sys.Topology() != "star" {
		t.Fatalf("Topology() = %q", sys.Topology())
	}
	if sys.Instance() == nil {
		t.Fatal("Instance() nil")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := dtm.Algorithms()
	if len(algs) < 10 {
		t.Fatalf("Algorithms() = %v", algs)
	}
	seen := map[dtm.Algorithm]bool{}
	for _, a := range algs {
		if seen[a] {
			t.Fatalf("duplicate algorithm %s", a)
		}
		seen[a] = true
	}
}

func TestRatioConsistency(t *testing.T) {
	rep, err := dtm.NewCliqueSystem(24, dtm.Uniform(8, 2)).Run(dtm.AlgGreedy)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(rep.Makespan) / float64(rep.LowerBound)
	if rep.Ratio != want {
		t.Fatalf("Ratio = %v, want %v", rep.Ratio, want)
	}
	if rep.MaxUse < 1 || rep.MaxWalk < 0 {
		t.Fatalf("bound witnesses missing: %+v", rep)
	}
}

func TestExtensionTopologySystems(t *testing.T) {
	cases := []struct {
		name string
		sys  *dtm.System
	}{
		{"ring", dtm.NewRingSystem(24, dtm.Uniform(8, 2))},
		{"tree", dtm.NewTreeSystem(2, 4, dtm.Uniform(8, 2))},
		{"multigrid", dtm.NewMultiGridSystem([]int{4, 4, 4}, dtm.Uniform(8, 2))},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.sys.Run(dtm.AlgGreedy)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Makespan < rep.LowerBound {
				t.Fatalf("makespan %d below bound %d", rep.Makespan, rep.LowerBound)
			}
		})
	}
}

// TestPrecomputeDistancesOption: butterfly metrics fall back to graph
// shortest paths, so small systems auto-install the all-pairs matrix and
// the option forces it; closed-form topologies never get one.
func TestPrecomputeDistancesOption(t *testing.T) {
	bf := dtm.NewButterflySystem(3, dtm.Uniform(8, 2))
	if !bf.Instance().G.Precomputed() {
		t.Error("small butterfly system did not auto-precompute distances")
	}
	forced := dtm.NewButterflySystem(3, dtm.Uniform(8, 2), dtm.PrecomputeDistances())
	if !forced.Instance().G.Precomputed() {
		t.Error("PrecomputeDistances() did not install the matrix")
	}
	clique := dtm.NewCliqueSystem(16, dtm.Uniform(8, 2), dtm.PrecomputeDistances())
	if clique.Instance().G.Precomputed() {
		t.Error("clique (closed-form metric) got a distance matrix")
	}
	if rep, err := bf.Run(dtm.AlgGreedy); err != nil || rep.Makespan < rep.LowerBound {
		t.Fatalf("precomputed butterfly run: rep=%+v err=%v", rep, err)
	}
}
