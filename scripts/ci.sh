#!/usr/bin/env bash
# ci.sh — the repo's full verification gate in one command.
#
#   scripts/ci.sh          # gofmt, vet, build, test
#   RACE=1 scripts/ci.sh   # additionally run the race-detector pass
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== obs no-op overhead guard =="
# A nil *obs.Collector must cost the engine pipeline nothing: the guard
# test asserts 0 allocs/op across every nil-receiver method.
go test ./internal/obs -run 'TestNilCollectorZeroAllocs|TestNilRegistry' -count=1

echo "== distance oracle guards =="
# The precomputed all-pairs matrix must keep Dist zero-alloc (and the
# warm lock-free tree cache too); the parallel-Dist benchmark must at
# least compile and run (1 iteration smoke — perf is checked manually
# with -cpu 1,4,8 -benchtime).
go test ./internal/graph -run 'TestPrecomputedDistZeroAlloc|TestWarmTreeDistZeroAlloc' -count=1
go test ./internal/graph -run '^$' -bench 'BenchmarkDistParallel' -benchtime 1x -count=1 >/dev/null

echo "== conflict-graph layer guards =="
# Warm CSR queries (Weight/Degree/Neighbors/CheckColoring) must stay
# zero-alloc, and the parallel build must produce byte-identical CSR
# storage at every worker count; the build benchmark must at least
# compile and run (1 iteration smoke — the ≥2× speedup vs the map-based
# reference builder is checked manually with -benchtime).
go test ./internal/depgraph -run 'TestWarmCSRQueriesZeroAlloc|TestBuildDeterministicAcrossWorkers' -count=1
go test . -run '^$' -bench 'BenchmarkDepGraphBuild' -benchtime 1x -count=1 >/dev/null

echo "== lower-bound oracle guards =="
# Warm oracle lookups must stay zero-alloc (a published bound is a
# pointer load), ComputeOpts must produce byte-identical bounds at every
# worker count and match the serial Compute path, concurrent first
# queries must race benignly under the race detector, and the cost-tier
# benchmark must at least compile and run (1 iteration smoke — the
# Measure-stage speedup is checked via BENCH_RESULTS.json).
go test ./internal/lower -run 'TestOracleWarmLookupZeroAllocs|TestComputeOptsWorkerDeterminism|TestComputeOptsMatchesCompute' -count=1
go test -race ./internal/lower -run 'TestOracleConcurrentFirstQuery' -count=1
go test . -run '^$' -bench 'BenchmarkLowerCompute' -benchtime 1x -count=1 >/dev/null

echo "== fault layer guards =="
# RunFaulty with a nil/empty plan must stay on Run's allocation budget
# (the fault machinery is free when unused), fault plans must be
# seed-deterministic, and the 3-rate × 2-topology fault matrix must
# recover deterministically under the race detector.
go test ./internal/sim -run 'TestRunFaultyEmptyPlanZeroAlloc' -count=1
go test -race ./internal/faults -run 'TestPlanSeedDeterminism' -count=1
go test -race ./internal/sim -run 'TestFaultMatrixSmoke' -count=1

echo "== obs/v2 ledger + exposition guards =="
# The Prometheus exposition must stay byte-deterministic (golden file),
# registry updates must stay zero-alloc while a scrape is in flight, the
# regression gate must flag a synthetic 2× slowdown and pass identical
# ledgers (self-test at both the library and CLI layers), and nil
# ledger/profiler hooks must keep the engine hot path allocation-free.
go test ./internal/obs -run 'TestPromGolden|TestPromDeterministic|TestPromParseable|TestRegistryUpdateZeroAllocDuringScrape' -count=1
go test ./internal/obs -run 'TestCompareGateSelfTest|TestMergeHistDeterminism|TestLedgerRoundTrip|TestNilLedgerProfilerZeroAllocs' -count=1
go test ./internal/engine -run 'TestLedgerHook|TestProfilerHook' -count=1
go test ./cmd/dtmsched -run 'TestBenchGate|TestBenchRecordSmoke' -count=1
go test ./cmd/dtmbench -run 'TestPublishPrefix' -count=1

if [[ "${RACE:-0}" != "0" ]]; then
    echo "== go test -race =="
    go test -race ./...
fi

echo "ci: all checks passed"
