#!/usr/bin/env bash
# ci.sh — the repo's full verification gate in one command.
#
#   scripts/ci.sh          # gofmt, vet, build, test
#   RACE=1 scripts/ci.sh   # additionally run the race-detector pass
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== obs no-op overhead guard =="
# A nil *obs.Collector must cost the engine pipeline nothing: the guard
# test asserts 0 allocs/op across every nil-receiver method.
go test ./internal/obs -run 'TestNilCollectorZeroAllocs|TestNilRegistry' -count=1

echo "== distance oracle guards =="
# The precomputed all-pairs matrix must keep Dist zero-alloc (and the
# warm lock-free tree cache too); the parallel-Dist benchmark must at
# least compile and run (1 iteration smoke — perf is checked manually
# with -cpu 1,4,8 -benchtime).
go test ./internal/graph -run 'TestPrecomputedDistZeroAlloc|TestWarmTreeDistZeroAlloc' -count=1
go test ./internal/graph -run '^$' -bench 'BenchmarkDistParallel' -benchtime 1x -count=1 >/dev/null

echo "== conflict-graph layer guards =="
# Warm CSR queries (Weight/Degree/Neighbors/CheckColoring) must stay
# zero-alloc, and the parallel build must produce byte-identical CSR
# storage at every worker count; the build benchmark must at least
# compile and run (1 iteration smoke — the ≥2× speedup vs the map-based
# reference builder is checked manually with -benchtime).
go test ./internal/depgraph -run 'TestWarmCSRQueriesZeroAlloc|TestBuildDeterministicAcrossWorkers' -count=1
go test . -run '^$' -bench 'BenchmarkDepGraphBuild' -benchtime 1x -count=1 >/dev/null

echo "== lower-bound oracle guards =="
# Warm oracle lookups must stay zero-alloc (a published bound is a
# pointer load), ComputeOpts must produce byte-identical bounds at every
# worker count and match the serial Compute path, concurrent first
# queries must race benignly under the race detector, and the cost-tier
# benchmark must at least compile and run (1 iteration smoke — the
# Measure-stage speedup is checked via BENCH_RESULTS.json).
go test ./internal/lower -run 'TestOracleWarmLookupZeroAllocs|TestComputeOptsWorkerDeterminism|TestComputeOptsMatchesCompute' -count=1
go test -race ./internal/lower -run 'TestOracleConcurrentFirstQuery' -count=1
go test . -run '^$' -bench 'BenchmarkLowerCompute' -benchtime 1x -count=1 >/dev/null

echo "== fault layer guards =="
# RunFaulty with a nil/empty plan must stay on Run's allocation budget
# (the fault machinery is free when unused), fault plans must be
# seed-deterministic, and the 3-rate × 2-topology fault matrix must
# recover deterministically under the race detector.
go test ./internal/sim -run 'TestRunFaultyEmptyPlanZeroAlloc' -count=1
go test -race ./internal/faults -run 'TestPlanSeedDeterminism' -count=1
go test -race ./internal/sim -run 'TestFaultMatrixSmoke' -count=1

echo "== obs/v2 ledger + exposition guards =="
# The Prometheus exposition must stay byte-deterministic (golden file),
# registry updates must stay zero-alloc while a scrape is in flight, the
# regression gate must flag a synthetic 2× slowdown and pass identical
# ledgers (self-test at both the library and CLI layers), and nil
# ledger/profiler hooks must keep the engine hot path allocation-free.
go test ./internal/obs -run 'TestPromGolden|TestPromDeterministic|TestPromParseable|TestRegistryUpdateZeroAllocDuringScrape' -count=1
go test ./internal/obs -run 'TestCompareGateSelfTest|TestMergeHistDeterminism|TestLedgerRoundTrip|TestNilLedgerProfilerZeroAllocs' -count=1
go test ./internal/engine -run 'TestLedgerHook|TestProfilerHook' -count=1
go test ./cmd/dtmsched -run 'TestBenchGate|TestBenchRecordSmoke' -count=1
go test ./cmd/dtmbench -run 'TestPublishPrefix' -count=1

echo "== online loop guards =="
# The online executor's steady-state tick must not allocate per step
# (buffers are hoisted once per run), and the corrected Poisson sampler
# must realize its nominal rate.
go test ./internal/online -run 'TestRunSteadyStateAllocs|TestPoissonRealizedRate|TestRandomNilRngError' -count=1
go test ./internal/xrand -run 'TestGeometricGap' -count=1

echo "== streaming service guards =="
# Serving is deterministic per seed (digest-pinned, verify-mode
# invariant), backpressure is exercised in both policies, the
# cross-window chain checker accepts both windows.Run modes and rejects
# corrupted schedules, and the cutter/executor overlap is race-clean.
go test ./internal/windows -run 'TestChainChecker' -count=1
go test -race ./internal/stream -count=1

echo "== serve-mode smoke =="
# Drain a fixed seeded stream through the CLI twice: counts must be
# deterministic, everything admitted must commit (reject policy), the
# backpressure counters must reach the Prometheus exposition, and the
# ledger it writes must self-gate clean.
go test ./cmd/dtmsched -run 'TestServeSmoke' -count=1
serve_tmp=$(mktemp -d)
serve_args=(serve -topo line -n 16 -rate 0.8 -txns 200 -window 4 -queue 8 -policy reject -seed 11)
go run ./cmd/dtmsched "${serve_args[@]}" -ledger "$serve_tmp/serve.jsonl" -prom "$serve_tmp/serve.prom" > "$serve_tmp/run1.txt"
go run ./cmd/dtmsched "${serve_args[@]}" > "$serve_tmp/run2.txt"
if ! diff <(grep -E 'admitted=|digest=' "$serve_tmp/run1.txt" | sed 's/wall=.*//') \
          <(grep -E 'admitted=|digest=' "$serve_tmp/run2.txt" | sed 's/wall=.*//'); then
    echo "serve: same seed produced different counts/digest" >&2
    exit 1
fi
grep -q 'rejected=[1-9]' "$serve_tmp/run1.txt" || { echo "serve: overloaded reject run dropped nothing" >&2; exit 1; }
admitted=$(sed -n 's/^admitted=\([0-9]*\) .*/\1/p' "$serve_tmp/run1.txt")
committed=$(sed -n 's/.*committed=\([0-9]*\).*/\1/p' "$serve_tmp/run1.txt")
if [[ "$admitted" != "$committed" ]]; then
    echo "serve: admitted=$admitted != committed=$committed" >&2
    exit 1
fi
for m in stream_admitted_total stream_rejected_total stream_committed_total stream_queue_depth_peak; do
    grep -q "^$m" "$serve_tmp/serve.prom" || { echo "serve: $m missing from prom exposition" >&2; exit 1; }
done
go run ./cmd/dtmsched bench gate "$serve_tmp/serve.jsonl" "$serve_tmp/serve.jsonl" >/dev/null
rm -rf "$serve_tmp"

echo "== chaos serving guards =="
# Fault-tolerant serving: the race pass over internal/stream above
# already covers the chaos/requeue/breaker tests with -race; here the
# CLI layer is pinned. (1) Zero-fault digest guard: the serve smoke
# flags must keep producing the digest committed before the fault layer
# landed — the fault paths must be byte-invisible when -faults is off.
# (2) Chaos determinism: the same chaos seed twice must print identical
# counts, fault counters, and digest.
chaos_tmp=$(mktemp -d)
go run ./cmd/dtmsched "${serve_args[@]}" > "$chaos_tmp/clean.txt"
grep -q 'digest=a08187a836377e8b' "$chaos_tmp/clean.txt" || {
    echo "serve: zero-fault digest drifted from the pre-chaos baseline a08187a836377e8b" >&2
    exit 1
}
chaos_args=(serve -topo clique -n 16 -rate 1.5 -txns 200 -window 8 -queue 16 -policy block -seed 7 -faults 0.2,99)
go run ./cmd/dtmsched "${chaos_args[@]}" > "$chaos_tmp/chaos1.txt"
go run ./cmd/dtmsched "${chaos_args[@]}" > "$chaos_tmp/chaos2.txt"
if ! diff <(sed 's/wall=.*//' "$chaos_tmp/chaos1.txt") <(sed 's/wall=.*//' "$chaos_tmp/chaos2.txt"); then
    echo "serve: same chaos seed produced different runs" >&2
    exit 1
fi
grep -q 'requeued=[1-9]' "$chaos_tmp/chaos1.txt" || { echo "serve: chaos run never requeued" >&2; exit 1; }
go test ./cmd/dtmsched -run 'TestServeChaosSmoke' -count=1
rm -rf "$chaos_tmp"

echo "== hierarchical scheduler guards =="
# The subtree-sharded scheduler writes disjoint slices of one schedule
# from concurrent shard workers — the whole package must be race-clean —
# and the partitioned ConflictIndex view's Members lookups must stay
# zero-alloc (each shard's CSR build walks them in the hot path). The
# fog–cloud generator's metric/tier tests ride along.
go test -race ./internal/hier -count=1
go test ./internal/tm -run 'TestPartitionedViewZeroAlloc' -count=1
go test ./internal/topology -run 'TestFogCloud' -count=1

echo "== hier shard-worker determinism diff =="
# Byte-identical schedules at every shard-worker count: the same seeded
# fog–cloud run through the CLI with 1 worker and 8 workers must print
# identical makespans, bounds, and (deterministic) stats. The package
# test pins workers 1/4/8 on raw schedules; this diff pins the whole
# engine pipeline end to end.
hier_tmp=$(mktemp -d)
hier_args=(-topo fogcloud -fanout 4,8 -linkw 8,1 -w 64 -k 2 -alg hier -seed 7 -trials 2)
go run ./cmd/dtmsched "${hier_args[@]}" -shardworkers 1 > "$hier_tmp/w1.txt"
go run ./cmd/dtmsched "${hier_args[@]}" -shardworkers 8 > "$hier_tmp/w8.txt"
if ! diff "$hier_tmp/w1.txt" "$hier_tmp/w8.txt"; then
    echo "hier: shard-worker counts 1 and 8 produced different schedules" >&2
    exit 1
fi
grep -q 'hier_shards:4' "$hier_tmp/w1.txt" || { echo "hier: expected 4 shards in CLI stats" >&2; exit 1; }
rm -rf "$hier_tmp"

if [[ "${RACE:-0}" != "0" ]]; then
    echo "== go test -race =="
    go test -race ./...
fi

echo "ci: all checks passed"
