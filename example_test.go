package dtmsched_test

// Runnable godoc examples for the public API. Fixed seeds make outputs
// stable, so these double as regression tests.

import (
	"context"
	"fmt"

	dtm "dtmsched"
)

// Compare several algorithms on one instance concurrently: RunBatch fans
// the jobs over a worker pool, honors context cancellation, and returns
// results in job order regardless of completion order.
func ExampleRunBatch() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // cancelling mid-batch would return partial results

	sys := dtm.NewCliqueSystem(32, dtm.Uniform(8, 2), dtm.Seed(11))
	algs := []dtm.Algorithm{dtm.AlgGreedy, dtm.AlgSequential, dtm.AlgList, dtm.AlgRandomOrder}
	jobs := make([]dtm.BatchJob, len(algs))
	for i, alg := range algs {
		jobs[i] = dtm.BatchJob{System: sys, Alg: alg}
	}
	results, err := dtm.RunBatch(ctx, jobs, dtm.BatchOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs:", len(results))
	byAlg := map[dtm.Algorithm]*dtm.Report{}
	for i, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
		byAlg[algs[i]] = r.Report
	}
	fmt.Println("greedy beats the global lock:",
		byAlg[dtm.AlgGreedy].Makespan < byAlg[dtm.AlgSequential].Makespan)
	fmt.Println("every schedule verified:", byAlg[dtm.AlgGreedy].Counters.Executed == int64(sys.NumTxns()))
	// Output:
	// jobs: 4
	// greedy beats the global lock: true
	// every schedule verified: true
}

// The smallest end-to-end use: build a system, run the paper's scheduler,
// read the verified report.
func ExampleSystem_Run() {
	sys := dtm.NewCliqueSystem(16, dtm.Uniform(4, 2), dtm.Seed(7))
	rep, err := sys.Run(dtm.AlgGreedy)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", rep.Makespan >= rep.LowerBound)
	fmt.Println("algorithm:", rep.Algorithm)
	// Output:
	// feasible: true
	// algorithm: greedy
}

// Theorem 4's selector: run both cluster approaches and keep the shorter.
func ExampleSystem_Run_cluster() {
	sys := dtm.NewClusterSystem(4, 4, 8, dtm.Uniform(4, 1), dtm.Seed(9))
	rep, err := sys.Run(dtm.AlgCluster)
	if err != nil {
		panic(err)
	}
	fmt.Println("picked one of the two approaches:", rep.Stats["picked"] == 1 || rep.Stats["picked"] == 2)
	// Output:
	// picked one of the two approaches: true
}

// The online extension: batch release under the nearest-waiter policy.
func ExampleSystem_RunOnline() {
	sys := dtm.NewLineSystem(16, dtm.SingleObject(), dtm.Seed(3))
	rep, err := sys.RunOnline(dtm.PolicyNearest, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("all committed:", rep.Makespan > 0)
	fmt.Println("policy:", rep.Policy)
	// Output:
	// all committed: true
	// policy: online/nearest
}

// The replication extension: pure readers never conflict.
func ExampleSystem_RunReplicated() {
	sys := dtm.NewCliqueSystem(16, dtm.Uniform(4, 2), dtm.Seed(5))
	rep, err := sys.RunReplicated(1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("conflicts:", rep.Conflicts)
	// Output:
	// conflicts: 0
}
