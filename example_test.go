package dtmsched_test

// Runnable godoc examples for the public API. Fixed seeds make outputs
// stable, so these double as regression tests.

import (
	"fmt"

	dtm "dtmsched"
)

// The smallest end-to-end use: build a system, run the paper's scheduler,
// read the verified report.
func ExampleSystem_Run() {
	sys := dtm.NewCliqueSystem(16, dtm.Uniform(4, 2), dtm.Seed(7))
	rep, err := sys.Run(dtm.AlgGreedy)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", rep.Makespan >= rep.LowerBound)
	fmt.Println("algorithm:", rep.Algorithm)
	// Output:
	// feasible: true
	// algorithm: greedy
}

// Theorem 4's selector: run both cluster approaches and keep the shorter.
func ExampleSystem_Run_cluster() {
	sys := dtm.NewClusterSystem(4, 4, 8, dtm.Uniform(4, 1), dtm.Seed(9))
	rep, err := sys.Run(dtm.AlgCluster)
	if err != nil {
		panic(err)
	}
	fmt.Println("picked one of the two approaches:", rep.Stats["picked"] == 1 || rep.Stats["picked"] == 2)
	// Output:
	// picked one of the two approaches: true
}

// The online extension: batch release under the nearest-waiter policy.
func ExampleSystem_RunOnline() {
	sys := dtm.NewLineSystem(16, dtm.SingleObject(), dtm.Seed(3))
	rep, err := sys.RunOnline(dtm.PolicyNearest, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("all committed:", rep.Makespan > 0)
	fmt.Println("policy:", rep.Policy)
	// Output:
	// all committed: true
	// policy: online/nearest
}

// The replication extension: pure readers never conflict.
func ExampleSystem_RunReplicated() {
	sys := dtm.NewCliqueSystem(16, dtm.Uniform(4, 2), dtm.Seed(5))
	rep, err := sys.RunReplicated(1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("conflicts:", rep.Conflicts)
	// Output:
	// conflicts: 0
}
