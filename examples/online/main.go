// Online: continuous transaction arrival — the paper's first open
// question, made runnable.
//
// The offline theorems assume the whole batch is known in advance. Real
// distributed TMs see transactions arrive continuously and must decide,
// whenever an object commits, which waiting transaction receives it next
// (contention management). This example runs the online executor on a
// cluster graph under three policies and two arrival regimes, against the
// offline schedule's makespan as the clairvoyance baseline.
//
// Run with: go run ./examples/online
package main

import (
	"fmt"
	"log"

	dtm "dtmsched"
)

func main() {
	sys := dtm.NewClusterSystem(6, 8, 16, dtm.Uniform(12, 2), dtm.Seed(21))

	offline, err := sys.Run(dtm.AlgCluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster graph, %d transactions, %d objects\n", sys.NumTxns(), sys.NumObjects())
	fmt.Printf("offline (clairvoyant) schedule: makespan %d, lower bound %d\n\n", offline.Makespan, offline.LowerBound)

	fmt.Println("batch release (everything arrives at step 0):")
	fmt.Printf("%-10s %-10s %-10s %-12s\n", "policy", "makespan", "comm", "vs offline")
	for _, pol := range []dtm.Policy{dtm.PolicyFIFO, dtm.PolicyNearest, dtm.PolicyRandom} {
		rep, err := sys.RunOnline(pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10d %-10d %.2fx\n", pol, rep.Makespan, rep.CommCost,
			float64(rep.Makespan)/float64(offline.Makespan))
	}

	fmt.Println("\nopen system (Poisson arrivals, 0.5 txns/step):")
	fmt.Printf("%-10s %-10s %-14s %-12s\n", "policy", "makespan", "meanResponse", "maxResponse")
	for _, pol := range []dtm.Policy{dtm.PolicyFIFO, dtm.PolicyNearest} {
		rep, err := sys.RunOnline(pol, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10d %-14.1f %-12d\n", pol, rep.Makespan, rep.MeanResponse, rep.MaxResponse)
	}

	fmt.Println("\nthe gap between online policies and the offline schedule is the price of")
	fmt.Println("non-clairvoyance; ordered acquisition keeps every policy deadlock- and abort-free.")
}
