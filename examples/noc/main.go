// NoC: scheduling transactional workloads on a network-on-chip mesh.
//
// The paper motivates the grid topology with systems-on-chip and manycore
// processors (XMOS, Xeon Phi). This example models a 16×16 tile processor
// whose cores run one transaction each over a shared-object space and
// contrasts three schedulers:
//
//   - the Section 5 subgrid schedule, which carries a *proven* O(k·log m)
//     worst-case bound (Theorem 3);
//   - FIFO list scheduling, a strong average-case heuristic with no bound;
//   - random-priority serialization, the realistic model of a randomized
//     contention manager.
//
// The point the table makes is the price and the value of guarantees: on
// friendly uniform workloads the heuristic is often shorter, but its gap
// to the certified lower bound drifts with contention, while the grid
// schedule's normalized ratio (÷ k·ln m) stays flat — that flatness *is*
// Theorem 3, observed empirically.
//
// Run with: go run ./examples/noc
package main

import (
	"fmt"
	"log"
	"math"

	dtm "dtmsched"
)

func main() {
	const side = 16 // 256 cores
	w := 4 * side
	lnM := math.Log(float64(w))
	fmt.Printf("network-on-chip mesh %d×%d (%d cores), w=%d objects, uniform sharing\n\n", side, side, side*side, w)
	fmt.Printf("%-3s | %-18s %-12s | %-10s | %-10s\n", "k", "grid (Thm 3)", "÷ k·ln m", "list", "random")

	for _, k := range []int{1, 2, 4, 8} {
		sys := dtm.NewGridSystem(side, dtm.Uniform(w, k), dtm.Seed(7))
		grid, err := sys.Run(dtm.AlgGrid)
		if err != nil {
			log.Fatal(err)
		}
		list, err := sys.Run(dtm.AlgList)
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := sys.Run(dtm.AlgRandomOrder)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d | ratio %-6.2f       %-12.2f | %-10.2f | %-10.2f\n",
			k, grid.Ratio, grid.Ratio/(float64(k)*lnM), list.Ratio, rnd.Ratio)
	}

	fmt.Println("\nthe guarantee's value: the grid column normalized by k·ln m stays flat as")
	fmt.Println("contention k grows — exactly the Theorem 3 shape — whereas the heuristics'")
	fmt.Println("ratios carry no bound at all; on adversarial inputs (see examples/lowerbound)")
	fmt.Println("only the structured schedule's behavior is predictable.")
}
