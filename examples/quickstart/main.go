// Quickstart: schedule a batch of transactions on a 64-node clique and
// print the verified report — the smallest end-to-end use of the public
// API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dtm "dtmsched"
)

func main() {
	// 64 nodes, one transaction each; 16 shared objects; every
	// transaction needs 2 of them.
	sys := dtm.NewCliqueSystem(64, dtm.Uniform(16, 2), dtm.Seed(42))

	// The greedy dependency-graph coloring schedule (Theorem 1: an O(k)
	// approximation on cliques).
	rep, err := sys.Run(dtm.AlgGreedy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("distributed TM batch scheduling on a clique")
	fmt.Printf("  nodes=%d objects=%d txns=%d\n", sys.NumNodes(), sys.NumObjects(), sys.NumTxns())
	fmt.Printf("  makespan          : %d steps\n", rep.Makespan)
	fmt.Printf("  certified optimum : ≥ %d steps\n", rep.LowerBound)
	fmt.Printf("  approximation     : ≤ %.2fx  (Theorem 1 guarantees O(k)=O(2))\n", rep.Ratio)
	fmt.Printf("  communication     : %d hop·steps of object movement\n", rep.CommCost)

	// Compare against the global-lock baseline a naive distributed TM
	// would use.
	seq, err := sys.Run(dtm.AlgSequential)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global lock would take %d steps (%.1fx worse)\n",
		seq.Makespan, float64(seq.Makespan)/float64(rep.Makespan))
}
