// Replication: what read-only replication buys a distributed TM.
//
// The paper's model keeps a single copy of every object, so even pure
// readers serialize. The replicated/multi-version systems it surveys
// (Section 1.2) relax exactly that: writers still serialize on the master
// copy, but readers receive snapshots and never conflict. This example
// sweeps the read share of a clique workload and shows the makespan
// collapse as conflicts thin out — the quantitative case for
// multi-versioning.
//
// Run with: go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"strings"

	dtm "dtmsched"
)

func main() {
	sys := dtm.NewCliqueSystem(96, dtm.Uniform(24, 2), dtm.Seed(33))
	base, err := sys.Run(dtm.AlgGreedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clique of %d nodes, %d objects, k=2; single-copy greedy makespan: %d\n\n",
		sys.NumNodes(), sys.NumObjects(), base.Makespan)
	fmt.Printf("%-10s %-14s %-11s %-10s %s\n", "readFrac", "writeAccesses", "conflicts", "makespan", "")

	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		rep, err := sys.RunReplicated(frac)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("█", int(rep.Makespan))
		if rep.Makespan > 60 {
			bar = bar[:60] + "…"
		}
		fmt.Printf("%-10.2f %-14d %-11d %-10d %s\n",
			frac, rep.WriteAccesses, rep.Conflicts, rep.Makespan, bar)
	}

	fmt.Println("\nwriters still chain on the master copy; at readFrac=1 the schedule is pure")
	fmt.Println("copy distribution — one step on a clique. The conflict column is the size of")
	fmt.Println("the write-conflict graph the scheduler actually has to color.")
}
