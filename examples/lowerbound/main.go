// Lowerbound: the Section 8 impossibility construction, made concrete.
//
// The paper's Theorem 6 shows instances where every object's optimal TSP
// tour is short — O(n^(4/5)) — yet every possible schedule is much longer:
// Ω(n^(4/5+1/40)/log n). This example builds that instance I_s on the
// block grid, prints its anatomy, and demonstrates the gap on real
// schedulers: object tours stay quadratic in s while the best schedule
// found keeps pulling away.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/lower"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func main() {
	fmt.Println("Section 8 lower-bound instance I_s on the block grid")
	fmt.Println("(all A-objects start in H_1's corner; every transaction = {block object, random B object})")
	fmt.Println()
	fmt.Printf("%-4s %-6s | %-12s %-9s | %-22s | %s\n", "s", "n", "maxTour(UB)", "5s^2", "best schedule found", "gap")

	for _, s := range []int{16, 25} {
		topo := topology.NewLBGrid(s)
		li := tm.NewLBInstance(xrand.NewDerived(1, "lbexample", fmt.Sprint(s)), topo)
		if err := li.Validate(); err != nil {
			log.Fatal(err)
		}
		bound := lower.Compute(li.Instance)

		bestName, bestMakespan := "", int64(0)
		for _, alg := range []core.Scheduler{&core.Greedy{}, baseline.List{}} {
			res, err := alg.Schedule(li.Instance)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := sim.Run(li.Instance, res.Schedule, sim.Options{}); err != nil {
				log.Fatal(err)
			}
			if bestName == "" || res.Makespan < bestMakespan {
				bestName, bestMakespan = alg.Name(), res.Makespan
			}
		}
		fmt.Printf("%-4d %-6d | %-12d %-9d | %-10s %11d | %.1fx the longest tour\n",
			s, topo.Graph().NumNodes(), bound.MaxTourUB, 5*s*s, bestName, bestMakespan,
			float64(bestMakespan)/float64(bound.MaxTourUB))
	}

	fmt.Println()
	fmt.Println("why: within each block all s·√s transactions share that block's A-object, so at")
	fmt.Println("most one commits per step; and Corollary 3 forces any burst of λ transactions in")
	fmt.Println("one block to consume λ^(3/5) distinct B-objects, which cannot be re-supplied —")
	fmt.Println("blocks are ≥ s apart, so B-objects cannot serve two blocks within an s-step window.")
	fmt.Println("Hence no schedule can track the TSP tour length; see experiment E8 for the checks.")
}
