// Datacenter: rack-scale scheduling on the cluster graph.
//
// The paper models a datacenter as cliques of machines (racks) joined by
// expensive inter-rack links (bridge weight γ ≥ β). This example shows the
// Theorem 4 crossover between the two cluster approaches: greedy
// (Approach 1) for small racks, randomized phases (Approach 2, Algorithm
// 1) as racks grow at fixed contention — and the easy fully-partitioned
// case where every object stays rack-local.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	dtm "dtmsched"
)

func main() {
	const alpha = 8 // racks
	fmt.Println("rack-scale cluster graph: 8 racks, inter-rack latency γ = 2β")
	fmt.Printf("%-6s %-6s | %-10s %-10s %-10s | %s\n", "β", "k", "r(A1)", "r(A2)", "r(auto)", "auto picked")

	for _, beta := range []int{4, 8, 16, 32} {
		gamma := int64(2 * beta)
		k := 2
		w := alpha * beta / 4
		sys := dtm.NewClusterSystem(alpha, beta, gamma, dtm.Uniform(w, k), dtm.Seed(11))

		a1, err := sys.Run(dtm.AlgClusterGreedy)
		if err != nil {
			log.Fatal(err)
		}
		a2, err := sys.Run(dtm.AlgClusterRandom)
		if err != nil {
			log.Fatal(err)
		}
		auto, err := sys.Run(dtm.AlgCluster)
		if err != nil {
			log.Fatal(err)
		}
		picked := "Approach 1 (greedy)"
		if auto.Stats["picked"] == 2 {
			picked = "Approach 2 (randomized phases)"
		}
		fmt.Printf("%-6d %-6d | %-10.2f %-10.2f %-10.2f | %s\n",
			beta, k, a1.Ratio, a2.Ratio, auto.Ratio, picked)
	}

	fmt.Println("\nper-rack sharding (objects never leave their rack):")
	fmt.Println("  when σ = 1 the greedy schedule runs racks fully in parallel and the")
	fmt.Println("  approximation collapses to Theorem 1's O(k) — see experiment E6's")
	fmt.Println("  cluster-local check (run: go run ./cmd/dtmbench -only E6).")
}
