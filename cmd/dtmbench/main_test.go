package main

import (
	"expvar"
	"testing"

	"dtmsched/internal/experiments"
	"dtmsched/internal/obs"
)

// TestPublishPrefix pins the expvar namespace: dtmbench must publish its
// registry under its own name — an earlier version leaked its sibling
// CLI's "dtmsched" prefix, making /debug/vars lie about which process
// was being inspected.
func TestPublishPrefix(t *testing.T) {
	if expvarName != "dtmbench" {
		t.Fatalf("expvarName = %q, want %q", expvarName, "dtmbench")
	}
	col := obs.NewMetricsCollector()
	col.Registry().Counter("probe").Inc()
	col.Registry().Publish(expvarName)
	if expvar.Get("dtmbench") == nil {
		t.Fatal("registry not published under the dtmbench namespace")
	}
	if expvar.Get("dtmsched") != nil {
		t.Fatal("registry must not publish under the sibling CLI's dtmsched namespace")
	}
}

// TestLedgerRecordFromPipeline covers the -ledger record builder: the
// per-experiment pipeline delta and latency histogram delta land in the
// record, and identical snapshots produce no latency.
func TestLedgerRecordFromPipeline(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("txn_latency_steps", nil)
	prev := r.Snapshot()
	for _, v := range []int64{2, 4, 8} {
		h.Observe(v)
	}
	cur := r.Snapshot()

	je := jsonExperiment{
		WallMS: 12.5,
		Pipeline: jsonPipeline{
			StageMS:  map[string]float64{"schedule": 1.5},
			SimSteps: 40, ObjectMoves: 90, Executed: 3,
			LowerMS: 2.5, LowerComputes: 2, LowerCacheHits: 4,
		},
	}
	cfg := experiments.DefaultConfig()
	cfg.Trials = 2
	rec := ledgerRecord("E5", cfg, true, je, prev, cur)
	if rec.Experiment != "E5" || rec.TotalMS != 12.5 || rec.SimSteps != 40 {
		t.Errorf("record = %+v, want the pipeline delta copied over", rec)
	}
	if rec.Config["quick"] != "true" || rec.Config["workers"] == "0" || rec.Config["workers"] == "" {
		t.Errorf("config = %v, want quick=true and a resolved worker count", rec.Config)
	}
	if rec.Latency == nil || rec.Latency.Count != 3 {
		t.Fatalf("latency = %+v, want the 3-observation delta", rec.Latency)
	}
	// rank = floor(0.5*3) clamped to 1 → the first bucket's bound.
	if rec.LatencyP50 != 2 {
		t.Errorf("latency p50 = %d, want 2", rec.LatencyP50)
	}

	// No histogram movement between snapshots → no latency on the record.
	rec = ledgerRecord("E5", cfg, true, je, cur, cur)
	if rec.Latency != nil {
		t.Errorf("identical snapshots produced latency %+v, want none", rec.Latency)
	}
}
