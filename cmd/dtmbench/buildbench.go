package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

// runBuildBench (-buildbench) times the two-pass CSR conflict-graph build
// at 1k and 10k transactions for each requested worker count, against the
// retired map-of-maps builder kept as depgraph.BuildReference. Instances
// use a sparse path graph with a unit metric, so the conflict structure
// matches a clique topology without materializing O(n²) edges.
func runBuildBench(spec string) error {
	var workerCounts []int
	for _, f := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return fmt.Errorf("-buildbench wants comma-separated worker counts ≥ 1, got %q", f)
		}
		workerCounts = append(workerCounts, w)
	}
	const iters = 5
	for _, n := range []int{1000, 10000} {
		in := buildBenchInstance(n)
		in.Index() // warm the shared conflict index: time the build, not indexing
		ref := timeBuild(iters, func() { depgraph.BuildReference(in, nil) })
		h := depgraph.Build(in, nil)
		fmt.Printf("n=%-6d edges=%-7d mapref     %12v/build\n", n, h.NumEdges(), ref.Round(time.Microsecond))
		for _, w := range workerCounts {
			d := timeBuild(iters, func() {
				depgraph.BuildOpts(in, nil, depgraph.Options{Workers: w})
			})
			fmt.Printf("n=%-6d edges=%-7d workers=%-3d%12v/build  %5.2fx vs mapref\n",
				n, h.NumEdges(), w, d.Round(time.Microsecond), float64(ref)/float64(d))
		}
	}
	return nil
}

// buildBenchInstance generates the n-transaction benchmark workload
// (w = n/4 objects, k = 2 objects per transaction, fixed seed).
func buildBenchInstance(n int) *tm.Instance {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	metric := graph.FuncMetric(func(u, v graph.NodeID) int64 {
		if u == v {
			return 0
		}
		return 1
	})
	return tm.UniformK(n/4, 2).Generate(xrand.New(1), g, metric, g.Nodes(), tm.PlaceAtRandomUser)
}

// timeBuild reports the fastest of iters timed runs of fn.
func timeBuild(iters int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
