// Command dtmbench regenerates every experiment of the reproduction
// (E1–E11): one per theorem of the paper, the Section 8 lower-bound
// constructions, and the baseline/ablation comparisons. Its output is the
// source of EXPERIMENTS.md; -json additionally writes a machine-readable
// results file (see BENCH_RESULTS.json).
//
// Usage:
//
//	dtmbench [-quick] [-trials N] [-seed S] [-only E5[,E6,…]] [-md]
//	         [-parallel N] [-timeout D] [-precompute auto|on|off]
//	         [-faults RATE[,RATE…][,SEED]]
//	         [-json FILE] [-trace FILE] [-metrics FILE] [-http ADDR]
//	         [-ledger FILE] [-profile DIR]
//
// -faults runs the fault-injection sweep (E20, unless -only selects
// more): fractional tokens are fault rates, an integer token reseeds the
// run. A single rate r expands to the ladder 0, r/4, r/2, r; the
// inflation-vs-fault-rate table lands in the normal output and -json.
//
// -trace writes a structured JSONL run trace to FILE and a Chrome
// trace-event file (open it in Perfetto or chrome://tracing) next to it;
// -metrics writes the final metrics snapshot; -http serves
// /debug/pprof/*, /debug/vars, and /metrics while the sweep runs.
//
// -ledger appends one schema-versioned run-ledger record per experiment
// (JSONL); compare or gate accumulated ledgers with `dtmsched bench
// compare OLD NEW` / `dtmsched bench gate OLD NEW`. -profile captures a
// CPU profile per pipeline stage plus a heap snapshot at every stage
// boundary into DIR (one file per stage crossing; forces -parallel 1).
package main

import (
	"context"
	"encoding/json"
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dtmsched/internal/engine"
	"dtmsched/internal/experiments"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/stats"
)

// expvarName is the expvar namespace the metrics registry publishes
// under (served at /debug/vars). It must match the binary, not its
// sibling CLI — pinned by TestPublishPrefix.
const expvarName = "dtmbench"

// jsonCheck, jsonColumn, jsonExperiment, and jsonOutput define the schema
// of the -json results file.
type jsonCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

type jsonColumn struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// jsonPipeline surfaces the engine instrumentation that each experiment's
// jobs measure: summed per-stage wall time and the simulator counters.
type jsonPipeline struct {
	StageMS         map[string]float64 `json:"stage_ms,omitempty"`
	DepGraphBuildMS float64            `json:"depgraph_build_ms,omitempty"`
	DepGraphBuilds  int64              `json:"depgraph_builds,omitempty"`
	LowerMS         float64            `json:"lower_ms,omitempty"`
	LowerComputes   int64              `json:"lower_computations,omitempty"`
	LowerCacheHits  int64              `json:"lower_cache_hits,omitempty"`
	SimSteps        int64              `json:"sim_steps"`
	ObjectMoves     int64              `json:"object_moves"`
	Executed        int64              `json:"txns_executed"`
}

type jsonExperiment struct {
	ID        string       `json:"id"`
	Title     string       `json:"title"`
	Ref       string       `json:"ref"`
	WallMS    float64      `json:"wall_ms"`
	Pipeline  jsonPipeline `json:"pipeline"`
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Summaries []jsonColumn `json:"summaries"`
	Checks    []jsonCheck  `json:"checks"`
	Notes     []string     `json:"notes,omitempty"`
}

type jsonOutput struct {
	Quick       bool             `json:"quick"`
	Trials      int              `json:"trials"`
	Seed        int64            `json:"seed"`
	Workers     int              `json:"workers"`
	TotalMS     float64          `json:"total_ms"`
	Pipeline    jsonPipeline     `json:"pipeline"`
	ChecksRun   int              `json:"checks_run"`
	ChecksFail  int              `json:"checks_failed"`
	Experiments []jsonExperiment `json:"experiments"`
}

// counterMap extracts the counters of a registry snapshot by full name.
func counterMap(samples []obs.Sample) map[string]int64 {
	out := make(map[string]int64, len(samples))
	for _, s := range samples {
		if s.Kind == "counter" {
			out[s.Name] = s.Value
		}
	}
	return out
}

// pipelineDelta computes the engine instrumentation accumulated between
// two counter snapshots.
func pipelineDelta(prev, cur map[string]int64) jsonPipeline {
	d := func(name string) int64 { return cur[name] - prev[name] }
	p := jsonPipeline{
		SimSteps:    d("sim_steps_total"),
		ObjectMoves: d("object_moves_total"),
		Executed:    d("txns_executed_total"),
		StageMS:     map[string]float64{},
	}
	for _, stage := range []string{"generate", "schedule", "verify", "measure", "done"} {
		if us := d("engine_stage_wall_us{stage=" + stage + "}"); us != 0 {
			p.StageMS[stage] = float64(us) / 1000
		}
	}
	if ns := d("depgraph_build_ns_total"); ns != 0 {
		p.DepGraphBuildMS = float64(ns) / 1e6
		p.DepGraphBuilds = d("depgraph_builds_total")
	}
	if n := d("lower_computations_total"); n != 0 {
		p.LowerMS = float64(d("lower_compute_ns_total")) / 1e6
		p.LowerComputes = n
	}
	p.LowerCacheHits = d("lower_cache_hits_total")
	return p
}

// columnSummaries extracts mean/min/max per numeric table column; columns
// with no parseable cells are skipped.
func columnSummaries(t *stats.Table) []jsonColumn {
	header, rows := t.Header(), t.Rows()
	var cols []jsonColumn
	for i, name := range header {
		var xs []float64
		for _, row := range rows {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "x"), 64); err == nil && !math.IsInf(v, 0) && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			continue
		}
		s := stats.Summarize(xs)
		cols = append(cols, jsonColumn{Name: name, N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max})
	}
	return cols
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast run")
		trials    = flag.Int("trials", 3, "random instances per parameter cell")
		seed      = flag.Int64("seed", 0, "root seed (0 = library default)")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		md        = flag.Bool("md", false, "emit Markdown headings (for EXPERIMENTS.md)")
		csv       = flag.Bool("csv", false, "emit tables as CSV (one block per experiment) for plotting")
		parallel  = flag.Int("parallel", 0, "engine workers per experiment sweep (0 = GOMAXPROCS)")
		lowerw    = flag.Int("lowerworkers", 0, "workers per certified lower-bound computation (0/1 = serial); bounds are identical at every count")
		shardw    = flag.Int("shardworkers", 0, "hierarchical shard workers for E22 (0 = GOMAXPROCS); schedules are identical at every count")
		precomp   = flag.String("precompute", "auto", "all-pairs distance matrix for graph-backed metrics: auto (small graphs only), on, off")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		buildb    = flag.String("buildbench", "", "benchmark the conflict-graph build at 1k/10k txns for these comma-separated worker counts, then exit")
		faultsIn  = flag.String("faults", "", "fault-injection sweep: comma-separated fault rates in [0,1) plus an optional integer seed (selects E20 unless -only is set)")
		jsonOut   = flag.String("json", "", "write machine-readable results to FILE")
		traceOut  = flag.String("trace", "", "write a JSONL run trace to FILE (plus a Chrome trace next to it)")
		metrOut   = flag.String("metrics", "", "write the final metrics snapshot (JSON) to FILE")
		httpAddr  = flag.String("http", "", "serve /debug/pprof/*, /debug/vars, and /metrics (JSON; ?format=prom for Prometheus text) on ADDR while running")
		ledgerOut = flag.String("ledger", "", "append one run-ledger record per experiment to FILE (JSONL; gate with `dtmsched bench compare/gate`)")
		profDir   = flag.String("profile", "", "capture per-stage CPU profiles and stage-boundary heap snapshots into DIR (forces -parallel 1)")
	)
	flag.Parse()

	if *buildb != "" {
		if err := runBuildBench(*buildb); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Trials = *trials
	cfg.Workers = *parallel
	cfg.LowerWorkers = *lowerw
	cfg.HierWorkers = *shardw
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *faultsIn != "" {
		rates, fseed, err := parseFaultsSpec(*faultsIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: -faults: %v\n", err)
			os.Exit(2)
		}
		cfg.FaultRates = rates
		if fseed != 0 && *seed == 0 {
			cfg.Seed = fseed
		}
		if *only == "" {
			*only = "E20"
		}
	}
	switch *precomp {
	case "auto":
		cfg.Precompute = experiments.PrecomputeAuto
	case "on":
		cfg.Precompute = experiments.PrecomputeOn
	case "off":
		cfg.Precompute = experiments.PrecomputeOff
	default:
		fmt.Fprintf(os.Stderr, "dtmbench: -precompute must be auto, on, or off (got %q)\n", *precomp)
		os.Exit(2)
	}

	// The collector is always attached: metrics-only by default, with
	// full trace retention when -trace asks for it. Trace retention is
	// capped so an all-experiments run cannot hold every span in memory;
	// the cap is reported, never silent.
	const maxTraceRuns = 256
	col := obs.NewMetricsCollector()
	if *traceOut != "" {
		col = obs.NewCollectorConfig(obs.Config{Traces: true, MaxTraceRuns: maxTraceRuns})
	}
	cfg.Collector = col
	var ledger *obs.Ledger
	var ledgerFile *os.File
	if *ledgerOut != "" {
		f, err := os.OpenFile(*ledgerOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: -ledger: %v\n", err)
			os.Exit(2)
		}
		ledgerFile = f
		ledger = obs.NewLedger(f)
	}
	var prof *obs.Profiler
	if *profDir != "" {
		p, err := obs.NewProfiler(*profDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: -profile: %v\n", err)
			os.Exit(2)
		}
		if cfg.Workers != 1 {
			fmt.Fprintln(os.Stderr, "dtmbench: -profile forces -parallel 1 (per-stage CPU attribution needs serial execution)")
			cfg.Workers = 1
		}
		cfg.Hook = engine.ProfilerHook(p)
		p.Start()
		prof = p
	}
	if *httpAddr != "" {
		col.Registry().Publish(expvarName)
		http.HandleFunc("/metrics", col.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: http server: %v\n", err)
			}
		}()
		fmt.Printf("serving /debug/pprof/, /debug/vars, /metrics on %s\n", *httpAddr)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg.Ctx = ctx

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dtmbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	out := jsonOutput{Quick: *quick, Trials: *trials, Seed: cfg.Seed, Workers: *parallel}
	failures := 0
	runStart := time.Now()
	prevSnap := col.Registry().Snapshot()
	prevCounters := counterMap(prevSnap)
	for _, e := range selected {
		start := time.Now()
		// One bound oracle per experiment: every engine job and direct
		// bound query of the experiment shares it (k algorithms × t trials
		// on one instance compute the bound once), while its instances
		// stay collectable after the experiment ends.
		cfg.LowerOracle = lower.NewOracle(lower.Options{Workers: cfg.LowerWorkers, Witness: true})
		res, err := e.Run(cfg)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: %s aborted: %v (timeout %s)\n", e.ID, err, *timeout)
			} else {
				fmt.Fprintf(os.Stderr, "dtmbench: %s failed: %v\n", e.ID, err)
			}
			os.Exit(1)
		}
		elapsed := time.Since(start)
		rounded := elapsed.Round(time.Millisecond)
		switch {
		case *md:
			fmt.Printf("## %s — %s\n\n*%s* (completed in %s)\n\n```\n%s```\n\n", res.ID, res.Title, res.Ref, rounded, res.Table)
		case *csv:
			fmt.Printf("# %s,%s\n%s\n", res.ID, res.Title, res.Table.CSV())
		default:
			fmt.Printf("=== %s — %s [%s] (%s)\n\n%s\n", res.ID, res.Title, res.Ref, rounded, res.Table)
		}
		curSnap := col.Registry().Snapshot()
		curCounters := counterMap(curSnap)
		je := jsonExperiment{ID: res.ID, Title: res.Title, Ref: res.Ref,
			WallMS:   float64(elapsed.Microseconds()) / 1000,
			Pipeline: pipelineDelta(prevCounters, curCounters),
			Header:   res.Table.Header(), Rows: res.Table.Rows(),
			Summaries: columnSummaries(res.Table), Notes: res.Notes}
		if ledger != nil {
			ledger.Append(ledgerRecord(res.ID, cfg, *quick, je, prevSnap, curSnap))
		}
		prevSnap, prevCounters = curSnap, curCounters
		for _, c := range res.Checks {
			mark := "PASS"
			if !c.OK {
				mark = "FAIL"
				failures++
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
			je.Checks = append(je.Checks, jsonCheck{Name: c.Name, OK: c.OK, Detail: c.Detail})
			out.ChecksRun++
		}
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
		out.Experiments = append(out.Experiments, je)
	}
	out.TotalMS = float64(time.Since(runStart).Microseconds()) / 1000
	out.Pipeline = pipelineDelta(map[string]int64{}, prevCounters)
	out.ChecksFail = failures

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, col.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		chromePath := strings.TrimSuffix(*traceOut, filepath.Ext(*traceOut)) + ".chrome.json"
		if err := writeFileWith(chromePath, col.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: writing chrome trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s and %s (trace retains up to %d runs)\n", *traceOut, chromePath, maxTraceRuns)
	}
	if *metrOut != "" {
		if err := writeFileWith(*metrOut, col.WriteMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metrOut)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: encoding results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, %d checks)\n", *jsonOut, len(out.Experiments), out.ChecksRun)
	}
	if prof != nil {
		if err := prof.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: profiler: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote per-stage profiles to %s\n", prof.Dir())
	}
	if ledger != nil {
		if err := ledger.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: ledger: %v\n", err)
			os.Exit(1)
		}
		if err := ledgerFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: ledger: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended %d run-ledger records to %s\n", len(out.Experiments), *ledgerOut)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dtmbench: %d shape checks failed\n", failures)
		os.Exit(1)
	}
}

// ledgerRecord builds the obs/v2 run-ledger record for one finished
// experiment: identity from the sweep configuration (so reruns with the
// same flags share a fingerprint), measurements from the counter deltas
// already computed for -json, and the transaction-latency distribution
// as the histogram delta between the surrounding registry snapshots.
func ledgerRecord(id string, cfg experiments.Config, quick bool, je jsonExperiment, prevSnap, curSnap []obs.Sample) *obs.RunRecord {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := je.Pipeline
	rec := &obs.RunRecord{
		Experiment: id,
		Config: map[string]string{
			"quick":   strconv.FormatBool(quick),
			"trials":  strconv.Itoa(cfg.Trials),
			"seed":    strconv.FormatInt(cfg.Seed, 10),
			"workers": strconv.Itoa(workers),
		},
		Seed:              cfg.Seed,
		StageMS:           p.StageMS,
		TotalMS:           je.WallMS,
		SimSteps:          p.SimSteps,
		ObjectMoves:       p.ObjectMoves,
		Executed:          p.Executed,
		LowerMS:           p.LowerMS,
		LowerComputations: p.LowerComputes,
		LowerCacheHits:    p.LowerCacheHits,
	}
	if lat := obs.HistDelta(histSample(curSnap, "txn_latency_steps"), histSample(prevSnap, "txn_latency_steps")); lat != nil && lat.Count > 0 {
		rec.Latency = lat
		rec.LatencyP50 = lat.Quantile(0.50)
		rec.LatencyP99 = lat.Quantile(0.99)
	}
	return rec
}

// histSample finds a histogram sample by full name; a zero Sample when
// the registry has not observed it yet.
func histSample(samples []obs.Sample, name string) obs.Sample {
	for _, s := range samples {
		if s.Name == name && s.Kind == "histogram" {
			return s
		}
	}
	return obs.Sample{}
}

// parseFaultsSpec parses the -faults argument: fractional tokens in
// [0,1) are fault rates, a single integer token is a root seed. One
// nonzero rate r expands to the ladder 0, r/4, r/2, r; explicit multi-rate
// lists gain a leading 0 (the fault-free baseline column) when missing.
func parseFaultsSpec(spec string) (rates []float64, seed int64, err error) {
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !strings.Contains(tok, ".") {
			n, perr := strconv.ParseInt(tok, 10, 64)
			if perr != nil {
				return nil, 0, fmt.Errorf("token %q is neither a rate nor an integer seed", tok)
			}
			if n == 0 {
				rates = append(rates, 0)
				continue
			}
			if seed != 0 {
				return nil, 0, fmt.Errorf("two seeds given (%d and %d)", seed, n)
			}
			seed = n
			continue
		}
		v, perr := strconv.ParseFloat(tok, 64)
		if perr != nil || v < 0 || v >= 1 {
			return nil, 0, fmt.Errorf("fault rate %q must be in [0,1)", tok)
		}
		rates = append(rates, v)
	}
	var nonzero []float64
	for _, r := range rates {
		if r > 0 {
			nonzero = append(nonzero, r)
		}
	}
	if len(nonzero) == 1 {
		r := nonzero[0]
		rates = []float64{0, r / 4, r / 2, r}
	} else if len(nonzero) > 1 {
		rates = append([]float64{0}, nonzero...)
		sort.Float64s(rates)
	}
	return rates, seed, nil
}

// writeFileWith streams a collector export into a file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
