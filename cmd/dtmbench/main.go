// Command dtmbench regenerates every experiment of the reproduction
// (E1–E11): one per theorem of the paper, the Section 8 lower-bound
// constructions, and the baseline/ablation comparisons. Its output is the
// source of EXPERIMENTS.md.
//
// Usage:
//
//	dtmbench [-quick] [-trials N] [-seed S] [-only E5[,E6,…]] [-md]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dtmsched/internal/experiments"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast run")
		trials = flag.Int("trials", 3, "random instances per parameter cell")
		seed   = flag.Int64("seed", 0, "root seed (0 = library default)")
		only   = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		md     = flag.Bool("md", false, "emit Markdown headings (for EXPERIMENTS.md)")
		csv    = flag.Bool("csv", false, "emit tables as CSV (one block per experiment) for plotting")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Trials = *trials
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dtmbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case *md:
			fmt.Printf("## %s — %s\n\n*%s* (completed in %s)\n\n```\n%s```\n\n", res.ID, res.Title, res.Ref, elapsed, res.Table)
		case *csv:
			fmt.Printf("# %s,%s\n%s\n", res.ID, res.Title, res.Table.CSV())
		default:
			fmt.Printf("=== %s — %s [%s] (%s)\n\n%s\n", res.ID, res.Title, res.Ref, elapsed, res.Table)
		}
		for _, c := range res.Checks {
			mark := "PASS"
			if !c.OK {
				mark = "FAIL"
				failures++
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dtmbench: %d shape checks failed\n", failures)
		os.Exit(1)
	}
}
