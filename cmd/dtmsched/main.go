// Command dtmsched schedules one batch of transactions on a chosen
// topology and reports makespan, certified lower bound, approximation
// ratio, and communication cost.
//
// Usage examples:
//
//	dtmsched -topo clique -n 128 -w 32 -k 2 -alg greedy
//	dtmsched -topo cluster -alpha 8 -beta 16 -gamma 32 -alg cluster
//	dtmsched -topo grid -side 32 -w 128 -k 4 -alg auto -trials 5
//	dtmsched -topo star -alg star -analyze -trace
//	dtmsched -topo grid -save inst.json          # persist the instance
//	dtmsched -load inst.json -alg greedy         # schedule a saved one
package main

import (
	"flag"
	"fmt"
	"os"

	dtm "dtmsched"
	"dtmsched/internal/analysis"
	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/lower"
	"dtmsched/internal/persist"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

func main() {
	var (
		topo     = flag.String("topo", "clique", "topology: clique|line|grid|hypercube|butterfly|cluster|star|torus")
		n        = flag.Int("n", 128, "nodes (clique/line), or per-topology default")
		side     = flag.Int("side", 16, "grid/torus side length")
		dim      = flag.Int("dim", 7, "hypercube/butterfly dimension")
		alpha    = flag.Int("alpha", 8, "cluster/star: number of clusters/rays")
		beta     = flag.Int("beta", 16, "cluster/star: nodes per cluster/ray")
		gamma    = flag.Int64("gamma", 32, "cluster: bridge edge weight (γ ≥ β per the paper)")
		w        = flag.Int("w", 32, "number of shared objects")
		k        = flag.Int("k", 2, "objects per transaction")
		workload = flag.String("workload", "uniform", "workload: uniform|zipf|hotspot|single")
		alg      = flag.String("alg", "auto", "algorithm (see -list)")
		seed     = flag.Int64("seed", 0, "root seed (0 = library default)")
		trials   = flag.Int("trials", 1, "independent instances to schedule")
		list     = flag.Bool("list", false, "list available algorithms and exit")
		analyze  = flag.Bool("analyze", false, "print the schedule analysis (parallelism, critical chain, hot objects)")
		trace    = flag.Bool("trace", false, "print the simulator's event trace (small instances)")
		savePath = flag.String("save", "", "write the generated instance to a JSON file and exit")
		loadPath = flag.String("load", "", "schedule an instance loaded from a JSON file instead of generating one")
	)
	flag.Parse()

	if *list {
		for _, a := range dtm.Algorithms() {
			fmt.Println(a)
		}
		return
	}

	if *loadPath != "" {
		if err := runLoaded(*loadPath, *alg, *analyze, *trace, *seed); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var wl dtm.Workload
	switch *workload {
	case "uniform":
		wl = dtm.Uniform(*w, *k)
	case "zipf":
		wl = dtm.Zipf(*w, *k)
	case "hotspot":
		wl = dtm.Hotspot(*w, *k)
	case "single":
		wl = dtm.SingleObject()
	default:
		fatalf("unknown workload %q", *workload)
	}

	for trial := 0; trial < *trials; trial++ {
		var opts []dtm.Option
		if *seed != 0 {
			opts = append(opts, dtm.Seed(*seed+int64(trial)))
		} else if trial > 0 {
			opts = append(opts, dtm.Seed(int64(1000+trial)))
		}
		var sys *dtm.System
		switch *topo {
		case "clique":
			sys = dtm.NewCliqueSystem(*n, wl, opts...)
		case "line":
			sys = dtm.NewLineSystem(*n, wl, opts...)
		case "grid":
			sys = dtm.NewGridSystem(*side, wl, opts...)
		case "torus":
			sys = dtm.NewTorusSystem(*side, *side, wl, opts...)
		case "hypercube":
			sys = dtm.NewHypercubeSystem(*dim, wl, opts...)
		case "butterfly":
			sys = dtm.NewButterflySystem(*dim, wl, opts...)
		case "cluster":
			sys = dtm.NewClusterSystem(*alpha, *beta, *gamma, wl, opts...)
		case "star":
			sys = dtm.NewStarSystem(*alpha, *beta, wl, opts...)
		default:
			fatalf("unknown topology %q", *topo)
		}
		if *savePath != "" {
			if err := persist.SaveInstance(*savePath, sys.Instance()); err != nil {
				fatalf("save: %v", err)
			}
			fmt.Printf("saved %s instance (%d txns, %d objects) to %s\n",
				sys.Topology(), sys.NumTxns(), sys.NumObjects(), *savePath)
			return
		}
		rep, err := sys.Run(dtm.Algorithm(*alg))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(rep)
		if len(rep.Stats) > 0 {
			fmt.Printf("  stats: %v\n", rep.Stats)
		}
		if *analyze || *trace {
			if err := extras(sys.Instance(), dtm.Algorithm(*alg), *analyze, *trace, *seed); err != nil {
				fatalf("%v", err)
			}
		}
	}
}

// runLoaded schedules a persisted instance with an internal scheduler
// chosen by name (topology-specific algorithms need their generator, so
// only topology-free ones are available here).
func runLoaded(path, alg string, analyze, trace bool, seed int64) error {
	in, err := persist.LoadInstance(path)
	if err != nil {
		return err
	}
	sched, err := genericScheduler(alg, seed)
	if err != nil {
		return err
	}
	res, err := sched.Schedule(in)
	if err != nil {
		return err
	}
	simRes, err := sim.Run(in, res.Schedule, sim.Options{Trace: trace})
	if err != nil {
		return err
	}
	lb := lower.Compute(in)
	ratio := 0.0
	if lb.Value > 0 {
		ratio = float64(res.Makespan) / float64(lb.Value)
	}
	fmt.Printf("%-20s on %-10s makespan=%-7d lb=%-6d ratio=%.2f comm=%d\n",
		res.Algorithm, in.G.Name(), res.Makespan, lb.Value, ratio, simRes.CommCost)
	printExtras(in, res, simRes, analyze, trace)
	return nil
}

func extras(in *tm.Instance, alg dtm.Algorithm, analyze, trace bool, seed int64) error {
	sched, err := genericScheduler(string(alg), seed)
	if err != nil {
		// Topology-specific algorithm: re-deriving it here would need
		// the generator; fall back to analyzing the greedy schedule.
		sched = &core.Greedy{}
	}
	res, err := sched.Schedule(in)
	if err != nil {
		return err
	}
	simRes, err := sim.Run(in, res.Schedule, sim.Options{Trace: trace})
	if err != nil {
		return err
	}
	printExtras(in, res, simRes, analyze, trace)
	return nil
}

func printExtras(in *tm.Instance, res *core.Result, simRes *sim.Result, analyze, trace bool) {
	if analyze {
		fmt.Print(analysis.Analyze(in, res.Schedule))
	}
	if trace {
		limit := len(simRes.Events)
		if limit > 200 {
			limit = 200
		}
		for _, e := range simRes.Events[:limit] {
			fmt.Println(" ", e)
		}
		if len(simRes.Events) > limit {
			fmt.Printf("  … %d more events\n", len(simRes.Events)-limit)
		}
	}
}

// genericScheduler resolves topology-independent algorithms by name.
func genericScheduler(alg string, seed int64) (core.Scheduler, error) {
	if seed == 0 {
		seed = xrand.DefaultSeed
	}
	switch alg {
	case "auto", "greedy":
		return &core.Greedy{}, nil
	case "greedy-degree":
		return &core.Greedy{Order: core.OrderDegree}, nil
	case "sequential":
		return baseline.Sequential{}, nil
	case "list":
		return baseline.List{}, nil
	case "random":
		return baseline.Random{Rng: xrand.NewDerived(seed, "cli", "random")}, nil
	default:
		return nil, fmt.Errorf("algorithm %q is topology-specific; loaded instances support auto|greedy|greedy-degree|sequential|list|random", alg)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dtmsched: "+format+"\n", args...)
	os.Exit(2)
}
