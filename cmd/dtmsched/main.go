// Command dtmsched schedules one batch of transactions on a chosen
// topology and reports makespan, certified lower bound, approximation
// ratio, and communication cost.
//
// Usage examples:
//
//	dtmsched -topo clique -n 128 -w 32 -k 2 -alg greedy
//	dtmsched -topo cluster -alpha 8 -beta 16 -gamma 32 -alg cluster
//	dtmsched -topo grid -side 32 -w 128 -k 4 -alg auto -trials 5
//	dtmsched -topo star -alg star -analyze -trace
//	dtmsched -topo grid -save inst.json          # persist the instance
//	dtmsched -load inst.json -alg greedy         # schedule a saved one
//
// The trace subcommand runs one instance with an observability collector
// attached and renders the run's timeline (per-object transit / queue /
// use lanes) as text; -out and -chrome export the structured JSONL and
// Chrome trace-event files:
//
//	dtmsched trace -topo grid -side 8 -w 16 -alg auto
//	dtmsched trace -topo star -alpha 4 -beta 8 -out run.jsonl -chrome run.chrome.json
//
// The bench subcommand family records reproducible benchmark ledgers and
// gates regressions between them (see bench.go):
//
//	dtmsched bench record -ledger base.jsonl
//	dtmsched bench compare base.jsonl head.jsonl
//	dtmsched bench gate base.jsonl head.jsonl   # exit 1 on regression
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	dtm "dtmsched"
	"dtmsched/internal/analysis"
	"dtmsched/internal/asciiviz"
	"dtmsched/internal/baseline"
	"dtmsched/internal/cliutil"
	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/hier"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/persist"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTraceCmd(os.Args[2:]); err != nil {
			fatalf("trace: %v", err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		os.Exit(runBenchCmd(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServeCmd(os.Args[2:]); err != nil {
			fatalf("serve: %v", err)
		}
		return
	}
	tf := cliutil.RegisterTopoFlags(flag.CommandLine, cliutil.TopoFlags{
		Name: "clique", N: 128, Side: 16, Dim: 7, Alpha: 8, Beta: 16, Gamma: 32,
		Fanout: "4,8", LinkW: "8,1",
	})
	wf := cliutil.RegisterWorkloadFlags(flag.CommandLine, cliutil.WorkloadFlags{
		Name: "uniform", W: 32, K: 2, Locality: 0.9,
	})
	var (
		alg          = flag.String("alg", "auto", "algorithm (see -list)")
		hiertier     = flag.Int("hiertier", 0, "fogcloud: shard tier for the hierarchical scheduler (0 = fog tier)")
		shardworkers = flag.Int("shardworkers", 0, "fogcloud: hierarchical shard workers (0 = GOMAXPROCS; schedule identical at every count)")
		seed         = flag.Int64("seed", 0, "root seed (0 = library default)")
		trials       = flag.Int("trials", 1, "independent instances to schedule")
		list         = flag.Bool("list", false, "list available algorithms and exit")
		analyze      = flag.Bool("analyze", false, "print the schedule analysis (parallelism, critical chain, hot objects)")
		trace        = flag.Bool("trace", false, "print the simulator's event trace (small instances)")
		savePath     = flag.String("save", "", "write the generated instance to a JSON file and exit")
		loadPath     = flag.String("load", "", "schedule an instance loaded from a JSON file instead of generating one")
	)
	flag.Parse()

	if *list {
		for _, a := range dtm.Algorithms() {
			fmt.Println(a)
		}
		return
	}

	if *loadPath != "" {
		if err := runLoaded(*loadPath, *alg, *analyze, *trace, *seed); err != nil {
			fatalf("%v", err)
		}
		return
	}

	// The localized workload shards objects by fog subtree, so workload
	// resolution needs the topology; the System constructors below rebuild
	// the same (deterministic) topology from the same flags.
	topo, err := tf.Build()
	if err != nil {
		fatalf("%v", err)
	}
	twl, err := wf.Build(topo)
	if err != nil {
		fatalf("%v", err)
	}
	wl := dtm.WrapWorkload(twl)

	for trial := 0; trial < *trials; trial++ {
		var opts []dtm.Option
		if *seed != 0 {
			opts = append(opts, dtm.Seed(*seed+int64(trial)))
		} else if trial > 0 {
			opts = append(opts, dtm.Seed(int64(1000+trial)))
		}
		var sys *dtm.System
		switch tf.Name {
		case "clique":
			sys = dtm.NewCliqueSystem(tf.N, wl, opts...)
		case "line":
			sys = dtm.NewLineSystem(tf.N, wl, opts...)
		case "grid":
			sys = dtm.NewGridSystem(tf.Side, wl, opts...)
		case "torus":
			sys = dtm.NewTorusSystem(tf.Side, tf.Side, wl, opts...)
		case "hypercube":
			sys = dtm.NewHypercubeSystem(tf.Dim, wl, opts...)
		case "butterfly":
			sys = dtm.NewButterflySystem(tf.Dim, wl, opts...)
		case "cluster":
			sys = dtm.NewClusterSystem(tf.Alpha, tf.Beta, tf.Gamma, wl, opts...)
		case "star":
			sys = dtm.NewStarSystem(tf.Alpha, tf.Beta, wl, opts...)
		case "fogcloud":
			fanout, weights, err := cliutil.ParseFogCloudShape(tf.Fanout, tf.LinkW)
			if err != nil {
				fatalf("%v", err)
			}
			opts = append(opts, dtm.HierTier(*hiertier), dtm.HierShardWorkers(*shardworkers))
			sys = dtm.NewFogCloudSystem(fanout, weights, wl, opts...)
		default:
			fatalf("unknown topology %q (want %s)", tf.Name, cliutil.TopoNames)
		}
		if *savePath != "" {
			if err := persist.SaveInstance(*savePath, sys.Instance()); err != nil {
				fatalf("save: %v", err)
			}
			fmt.Printf("saved %s instance (%d txns, %d objects) to %s\n",
				sys.Topology(), sys.NumTxns(), sys.NumObjects(), *savePath)
			return
		}
		rep, err := sys.Run(dtm.Algorithm(*alg))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(rep)
		if len(rep.Stats) > 0 {
			fmt.Printf("  stats: %v\n", rep.Stats)
		}
		if *analyze || *trace {
			if err := extras(sys.Instance(), dtm.Algorithm(*alg), *analyze, *trace, *seed); err != nil {
				fatalf("%v", err)
			}
		}
	}
}

// runTraceCmd implements `dtmsched trace`: schedule one instance through
// the engine with a tracing collector attached, render the run's timeline
// and schedule metrics, and optionally export the JSONL / Chrome trace and
// the metrics snapshot.
func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("dtmsched trace", flag.ExitOnError)
	tf := cliutil.RegisterTopoFlags(fs, cliutil.TopoFlags{
		Name: "grid", N: 64, Side: 8, Dim: 5, Alpha: 4, Beta: 8, Gamma: 16,
		Fanout: "4,8", LinkW: "8,1",
	})
	wf := cliutil.RegisterWorkloadFlags(fs, cliutil.WorkloadFlags{Name: "uniform", W: 16, K: 2, Locality: 0.9})
	var (
		alg          = fs.String("alg", "auto", "algorithm: auto (paper scheduler for the topology)|greedy|greedy-degree|sequential|list|random")
		hiertier     = fs.Int("hiertier", 0, "fogcloud: shard tier for the hierarchical scheduler (0 = fog tier)")
		shardworkers = fs.Int("shardworkers", 0, "fogcloud: hierarchical shard workers (0 = GOMAXPROCS)")
		seed         = fs.Int64("seed", 0, "root seed (0 = library default)")
		out          = fs.String("out", "", "write the structured JSONL trace to FILE")
		chrome       = fs.String("chrome", "", "write a Chrome trace-event file (Perfetto / chrome://tracing) to FILE")
		metrics      = fs.String("metrics", "", "write the metrics snapshot (JSON) to FILE")
		width        = fs.Int64("width", 200, "max timeline width in steps before the text rendering is skipped")
		objects      = fs.Int("objects", 40, "max object lanes in the text timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rootSeed := *seed
	if rootSeed == 0 {
		rootSeed = xrand.DefaultSeed
	}

	topo, err := tf.Build()
	if err != nil {
		return err
	}
	wl, err := wf.Build(topo)
	if err != nil {
		return err
	}
	g := topo.Graph()
	in := wl.Generate(xrand.NewDerived(rootSeed, "trace", tf.Name), g, graph.FuncMetric(topo.Dist), g.Nodes(), tm.PlaceAtRandomUser)

	sched, err := traceScheduler(*alg, topo, rootSeed)
	if err != nil {
		return err
	}
	if hs, ok := sched.(*hier.Scheduler); ok {
		hs.Tier, hs.Workers = *hiertier, *shardworkers
	}

	col := obs.NewCollector()
	rep, err := engine.Run(context.Background(), engine.Job{
		Name: "trace/" + tf.Name, Instance: in, Scheduler: sched, Collector: col,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-20s on %-10s makespan=%-7d lb=%-6d ratio=%.2f comm=%d\n",
		rep.Algorithm, tf.Name, rep.Makespan, rep.Bound.Value, rep.Ratio, rep.CommCost)
	fmt.Println()
	fmt.Print(asciiviz.Timeline(in, rep.Schedule, *objects, *width))

	sm, _, _ := obs.Derive(in, rep.Schedule)
	fmt.Printf("\ntxn latency (steps): p50=%d p90=%d p99=%d max=%d\n",
		sm.TxnLatencyP50, sm.TxnLatencyP90, sm.TxnLatencyP99, sm.TxnLatencyMax)
	fmt.Printf("object travel total=%d steps; critical path %d txns: %v\n",
		sm.TotalTravel, len(sm.CriticalPath), sm.CriticalPath)
	if len(sm.PeakQueueDepth) > 0 {
		fmt.Printf("hottest nodes by peak queue depth:")
		for i, nd := range sm.PeakQueueDepth {
			if i == 4 {
				break
			}
			fmt.Printf(" node%d=%d", nd.Node, nd.Peak)
		}
		fmt.Println()
	}

	for _, f := range []struct {
		path  string
		write func(io.Writer) error
	}{{*out, col.WriteJSONL}, {*chrome, col.WriteChromeTrace}, {*metrics, col.WriteMetrics}} {
		if f.path == "" {
			continue
		}
		file, err := os.Create(f.path)
		if err != nil {
			return err
		}
		if err := f.write(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.path)
	}
	return nil
}

// traceScheduler resolves the trace subcommand's algorithm: "auto" picks
// the paper's scheduler for the topology (mirroring the facade), other
// names resolve through the topology-free table.
func traceScheduler(alg string, topo topology.Topology, seed int64) (core.Scheduler, error) {
	if alg == "auto" {
		switch t := topo.(type) {
		case *topology.Line:
			return &core.Line{Topo: t}, nil
		case *topology.Grid:
			return &core.Grid{Topo: t}, nil
		case *topology.ClusterGraph:
			return &core.Cluster{Topo: t, Rng: xrand.NewDerived(seed, "trace", "cluster")}, nil
		case *topology.Star:
			return &core.Star{Topo: t, Rng: xrand.NewDerived(seed, "trace", "star")}, nil
		case *topology.FogCloud:
			return &hier.Scheduler{Topo: t}, nil
		default:
			return &core.Greedy{}, nil
		}
	}
	return genericScheduler(alg, seed)
}

// runLoaded schedules a persisted instance with an internal scheduler
// chosen by name (topology-specific algorithms need their generator, so
// only topology-free ones are available here).
func runLoaded(path, alg string, analyze, trace bool, seed int64) error {
	in, err := persist.LoadInstance(path)
	if err != nil {
		return err
	}
	sched, err := genericScheduler(alg, seed)
	if err != nil {
		return err
	}
	res, err := sched.Schedule(in)
	if err != nil {
		return err
	}
	simRes, err := sim.Run(in, res.Schedule, sim.Options{Trace: trace})
	if err != nil {
		return err
	}
	lb := lower.ComputeOpts(in, lower.Options{Workers: runtime.GOMAXPROCS(0)})
	ratio := 0.0
	if lb.Value > 0 {
		ratio = float64(res.Makespan) / float64(lb.Value)
	}
	fmt.Printf("%-20s on %-10s makespan=%-7d lb=%-6d ratio=%.2f comm=%d\n",
		res.Algorithm, in.G.Name(), res.Makespan, lb.Value, ratio, simRes.CommCost)
	printExtras(in, res, simRes, analyze, trace)
	return nil
}

func extras(in *tm.Instance, alg dtm.Algorithm, analyze, trace bool, seed int64) error {
	sched, err := genericScheduler(string(alg), seed)
	if err != nil {
		// Topology-specific algorithm: re-deriving it here would need
		// the generator; fall back to analyzing the greedy schedule.
		sched = &core.Greedy{}
	}
	res, err := sched.Schedule(in)
	if err != nil {
		return err
	}
	simRes, err := sim.Run(in, res.Schedule, sim.Options{Trace: trace})
	if err != nil {
		return err
	}
	printExtras(in, res, simRes, analyze, trace)
	return nil
}

func printExtras(in *tm.Instance, res *core.Result, simRes *sim.Result, analyze, trace bool) {
	if analyze {
		fmt.Print(analysis.Analyze(in, res.Schedule))
	}
	if trace {
		limit := len(simRes.Events)
		if limit > 200 {
			limit = 200
		}
		for _, e := range simRes.Events[:limit] {
			fmt.Println(" ", e)
		}
		if len(simRes.Events) > limit {
			fmt.Printf("  … %d more events\n", len(simRes.Events)-limit)
		}
	}
}

// genericScheduler resolves topology-independent algorithms by name.
func genericScheduler(alg string, seed int64) (core.Scheduler, error) {
	if seed == 0 {
		seed = xrand.DefaultSeed
	}
	switch alg {
	case "auto", "greedy":
		return &core.Greedy{}, nil
	case "greedy-degree":
		return &core.Greedy{Order: core.OrderDegree}, nil
	case "sequential":
		return baseline.Sequential{}, nil
	case "list":
		return baseline.List{}, nil
	case "random":
		return baseline.Random{Rng: xrand.NewDerived(seed, "cli", "random")}, nil
	default:
		return nil, fmt.Errorf("algorithm %q is topology-specific; loaded instances support auto|greedy|greedy-degree|sequential|list|random", alg)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dtmsched: "+format+"\n", args...)
	os.Exit(2)
}
