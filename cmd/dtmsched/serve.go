// The serve subcommand runs the streaming scheduler service: a seeded
// load generator injects transactions continuously, the service admits
// them into a bounded queue (block or reject backpressure), cuts rolling
// scheduling windows over the mutable conflict index, and executes each
// window through the engine while the next one fills. The run drains
// deterministically: the same seed and flags reproduce the admission
// order, window cuts, commit steps, and the summary digest bit-for-bit.
//
//	dtmsched serve -topo line -n 16 -rate 0.8 -txns 500 -policy reject
//	dtmsched serve -topo grid -side 8 -w 32 -rate 0.5 -ledger serve.jsonl -prom metrics.prom
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dtmsched/internal/cliutil"
	"dtmsched/internal/engine"
	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
	"dtmsched/internal/obs"
	"dtmsched/internal/stream"
	"dtmsched/internal/xrand"
)

// runServeCmd implements `dtmsched serve`.
func runServeCmd(args []string) error {
	fs := flag.NewFlagSet("dtmsched serve", flag.ExitOnError)
	tf := cliutil.RegisterTopoFlags(fs, cliutil.TopoFlags{
		Name: "clique", N: 16, Side: 8, Dim: 5, Alpha: 4, Beta: 8, Gamma: 16,
		Fanout: "4,8", LinkW: "8,1",
	})
	wf := cliutil.RegisterWorkloadFlags(fs, cliutil.WorkloadFlags{Name: "uniform", W: 16, K: 2, Locality: 0.9})
	var (
		rate     = fs.Float64("rate", 0.5, "injection rate in transactions per logical step")
		txns     = fs.Int("txns", 500, "total transactions to stream before draining")
		window   = fs.Int("window", 0, "max transactions per scheduling window (0 = node count)")
		queue    = fs.Int("queue", 0, "admission queue capacity (0 = 2×window)")
		policy   = fs.String("policy", "block", "backpressure policy when the queue is full: block|reject")
		verify   = fs.String("verify", "fast", "per-window verification: full|fast|off")
		retries  = fs.Int("retries", 1, "engine attempts per window (≤ 1 = no retry)")
		deadline = fs.Duration("deadline", 0, "per-window engine deadline (0 = none)")
		pipeline = fs.Int("pipeline", 2, "windows that may queue for execution while later ones are cut")
		seed     = fs.Int64("seed", 0, "root seed (0 = library default)")
		ledger   = fs.String("ledger", "", "append one run record (stream counters + window latency) to FILE")
		prom     = fs.String("prom", "", "write the final Prometheus text exposition to FILE")
		faultsF  = fs.String("faults", "", "chaos injection RATE[,SEED]: per-chunk link down/slow at RATE, crashes at RATE/2, drops at RATE/4 (empty = off)")
		shed     = fs.Int("shed", 3, "requeues a down-node transaction survives before it is shed")
		trip     = fs.Float64("inflation-trip", 1.5, "rolling makespan-inflation ratio that trips the admission breaker to reject")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rootSeed := *seed
	if rootSeed == 0 {
		rootSeed = xrand.DefaultSeed
	}

	topo, err := tf.Build()
	if err != nil {
		return err
	}
	wl, err := wf.Build(topo)
	if err != nil {
		return err
	}
	pol, err := stream.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	vm, err := parseVerifyMode(*verify)
	if err != nil {
		return err
	}

	g := topo.Graph()
	metric := graph.FuncMetric(topo.Dist)

	spec, err := cliutil.ParseFaultSpec(*faultsF)
	if err != nil {
		return err
	}
	var inj faults.Injector
	if spec.Rate > 0 {
		chaosSeed := spec.Seed
		if chaosSeed == 0 {
			chaosSeed = rootSeed
		}
		// Horizon covers roughly twice the nominal stream duration so
		// chaos pressure persists through the drain; the redraw chunk is
		// the expected steps one serving window takes to fill.
		horizon := int64(2 * float64(*txns) / *rate)
		if horizon < 64 {
			horizon = 64
		}
		effWindow := *window
		if effWindow <= 0 {
			effWindow = g.NumNodes()
		}
		chunk := int64(float64(effWindow) / *rate)
		inj, err = stream.NewChaos(stream.ChaosConfig{
			Rate: spec.Rate, Seed: chaosSeed, Horizon: horizon, Chunk: chunk,
		}, g)
		if err != nil {
			return err
		}
	}

	homes := make([]graph.NodeID, wl.W)
	homeRng := xrand.NewDerived(rootSeed, "serve", "homes", tf.Name)
	for o := range homes {
		homes[o] = g.Nodes()[homeRng.Intn(g.NumNodes())]
	}

	col := obs.NewMetricsCollector()
	cfg := stream.Config{
		G:          g,
		Metric:     metric,
		NumObjects: wl.W,
		Home:       homes,
		Source: stream.NewGenerator(
			xrand.NewDerived(rootSeed, "serve", "gen", tf.Name), g, wl, *rate, *txns),
		MaxWindow:     *window,
		QueueCap:      *queue,
		Policy:        pol,
		Verify:        vm,
		Retry:         engine.RetryPolicy{MaxAttempts: *retries},
		Deadline:      *deadline,
		PipelineDepth: *pipeline,
		Collector:     col,
		Faults:        inj,
		MaxRequeue:    *shed,
		InflationTrip: *trip,
		OnCancel:      stream.CancelDrain,
	}

	// SIGINT/SIGTERM trigger a graceful drain: stop admitting, flush the
	// queue and in-flight windows, then print the summary and write the
	// ledger as usual with the cancelled marker set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := stream.Serve(ctx, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("serve %s: %d nodes, %d objects, workload %s, rate %.3g, policy %s, verify %s, seed %d\n",
		tf.Name, g.NumNodes(), wl.W, wf.Name, *rate, pol, vm, rootSeed)
	fmt.Printf("admitted=%d rejected=%d blocked=%d committed=%d windows=%d\n",
		res.Admitted, res.Rejected, res.Blocked, res.Committed, res.Windows)
	fmt.Printf("clock=%d steps throughput=%.4f txn/step comm=%d queue_peak=%d\n",
		res.Clock, res.Throughput, res.CommCost, res.QueuePeak)
	fmt.Printf("response mean=%.2f max=%d steps\n", res.MeanResponse, res.MaxResponse)
	if inj != nil {
		fmt.Printf("faults %s: requeued=%d shed=%d degraded=%d inflation=%.3f trips=%d recoveries=%d\n",
			*faultsF, res.Requeued, res.Shed, res.DegradedWindows,
			res.MeanInflation, res.BreakerTrips, res.BreakerRecoveries)
	}
	if res.Cancelled {
		fmt.Println("cancelled: drained queued and in-flight windows before summarizing")
	}
	fmt.Printf("digest=%016x wall=%s\n", res.Digest, wall.Round(time.Millisecond))

	if *prom != "" {
		f, err := os.Create(*prom)
		if err != nil {
			return err
		}
		if err := col.Registry().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *prom)
	}
	if *ledger != "" {
		if err := appendServeRecord(*ledger, tf.Name, wf.Name, fs, rootSeed, inj != nil, res, col, wall); err != nil {
			return err
		}
		fmt.Printf("appended run record to %s\n", *ledger)
	}
	return nil
}

// appendServeRecord writes the run's single ledger entry: the stream
// counters, the response-time quantiles, and the window-latency
// distribution, fingerprinted by the full serving configuration so
// `bench compare` pools repeat runs of one setup.
func appendServeRecord(path, topoName, workload string, fs *flag.FlagSet, rootSeed int64,
	faultsOn bool, res *stream.Result, col *obs.Collector, wall time.Duration) error {
	config := map[string]string{"topo": topoName, "workload": workload}
	names := []string{"n", "side", "dim", "alpha", "beta", "gamma",
		"fanout", "linkw", "w", "k", "locality",
		"rate", "txns", "window", "queue", "policy", "verify"}
	if faultsOn {
		// Chaos flags enter the fingerprint only when active, so
		// fault-free records keep their historical grouping.
		names = append(names, "faults", "shed", "inflation-trip")
	}
	for _, name := range names {
		config[name] = fs.Lookup(name).Value.String()
	}
	config["seed"] = fmt.Sprint(rootSeed)

	rec := obs.RunRecord{
		Experiment:       "serve/" + topoName,
		Config:           config,
		Seed:             rootSeed,
		Algorithm:        "stream/window",
		TotalMS:          float64(wall.Nanoseconds()) / 1e6,
		Executed:         res.Committed,
		StreamAdmitted:   res.Admitted,
		StreamRejected:   res.Rejected,
		StreamBlocked:    res.Blocked,
		StreamWindows:    int64(res.Windows),
		StreamQueuePeak:  int64(res.QueuePeak),
		StreamRequeued:   res.Requeued,
		StreamShed:       res.Shed,
		StreamDegraded:   int64(res.DegradedWindows),
		StreamInflation:  res.MeanInflation,
		StreamTrips:      int64(res.BreakerTrips),
		StreamRecoveries: int64(res.BreakerRecoveries),
	}
	for _, s := range col.Registry().Snapshot() {
		switch s.Name {
		case "stream_window_latency_steps":
			rec.WindowLatency = obs.HistDelta(s, obs.Sample{})
		case "stream_txn_response_steps":
			rec.Latency = obs.HistDelta(s, obs.Sample{})
			rec.LatencyP50, rec.LatencyP99 = s.P50, s.P99
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l := obs.NewLedger(f)
	err = l.Append(&rec)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseVerifyMode resolves the -verify flag.
func parseVerifyMode(s string) (engine.VerifyMode, error) {
	switch strings.ToLower(s) {
	case "full":
		return engine.VerifyFull, nil
	case "fast":
		return engine.VerifyFast, nil
	case "off":
		return engine.VerifyOff, nil
	default:
		return 0, fmt.Errorf("unknown verify mode %q (want full, fast, or off)", s)
	}
}
