// The bench subcommand family records reproducible benchmark ledgers
// and judges regressions between them:
//
//	dtmsched bench record  -ledger FILE [-suite quick|smoke] [-trials N] [-seed S] [-workers N]
//	dtmsched bench compare [flags] OLD.jsonl NEW.jsonl
//	dtmsched bench gate    [flags] OLD.jsonl NEW.jsonl
//
// record runs a fixed suite of (topology, workload) cells through the
// engine — the paper's scheduler for each topology, seeds derived per
// trial — and appends one obs.RunRecord per job to the ledger. compare
// groups two ledgers by configuration fingerprint and reports per-metric
// deltas; gate is compare with an exit code: 1 when any metric
// regressed, so CI can chain `record` on two builds and fail the merge.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/obs"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

const benchUsage = `usage:
  dtmsched bench record  -ledger FILE [-suite quick|smoke] [-trials N] [-seed S] [-workers N]
  dtmsched bench compare [-json] [-time-threshold F] [-count-threshold F] [-min-ms F] [-mad-factor F] OLD.jsonl NEW.jsonl
  dtmsched bench gate    [same flags as compare] OLD.jsonl NEW.jsonl   (exit 1 on regression)`

// runBenchCmd dispatches `dtmsched bench record|compare|gate` and
// returns the process exit code.
func runBenchCmd(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, benchUsage)
		return 2
	}
	switch args[0] {
	case "record":
		return benchRecord(args[1:])
	case "compare":
		return benchCompare(args[1:], false)
	case "gate":
		return benchCompare(args[1:], true)
	default:
		fmt.Fprintf(os.Stderr, "dtmsched bench: unknown subcommand %q\n%s\n", args[0], benchUsage)
		return 2
	}
}

// benchCell is one suite entry: a topology under the paper's scheduler
// with a uniform workload sized to it.
type benchCell struct {
	name string
	mk   func() topology.Topology
	w, k int
}

// benchSuite resolves a suite name to its cells; nil for unknown names.
// The quick suite covers every scheduler family of the repo (greedy on
// the clique, the line/grid offline algorithms, the randomized
// star/cluster schedulers, and the hierarchical fog–cloud scheduler);
// smoke is its two-cell prefix for tests.
func benchSuite(name string) []benchCell {
	quick := []benchCell{
		{"clique64", func() topology.Topology { return topology.NewClique(64) }, 32, 2},
		{"grid12", func() topology.Topology { return topology.NewSquareGrid(12) }, 48, 2},
		{"line64", func() topology.Topology { return topology.NewLine(64) }, 32, 2},
		{"star4x8", func() topology.Topology { return topology.NewStar(4, 8) }, 16, 2},
		{"cluster4x8", func() topology.Topology { return topology.NewCluster(4, 8, 16) }, 32, 2},
		{"fogcloud4x8", func() topology.Topology { return topology.NewFogCloud([]int{4, 8}, []int64{8, 1}) }, 32, 2},
	}
	switch name {
	case "quick":
		return quick
	case "smoke":
		return quick[:2]
	}
	return nil
}

// benchRecord implements `dtmsched bench record`: run the suite and
// append one ledger record per engine job via the engine's LedgerHook.
// Job names carry the trial as a "#N" suffix, so all trials of a cell
// share one fingerprint and the comparator pools them.
func benchRecord(args []string) int {
	fs := flag.NewFlagSet("dtmsched bench record", flag.ExitOnError)
	var (
		ledgerPath = fs.String("ledger", "", "append run records to FILE (required)")
		suite      = fs.String("suite", "quick", "benchmark suite: quick (all scheduler families) or smoke (two cells)")
		trials     = fs.Int("trials", 3, "instances per suite cell (independent derived seeds)")
		seed       = fs.Int64("seed", 0, "root seed (0 = library default)")
		workers    = fs.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	if *ledgerPath == "" {
		fmt.Fprintf(os.Stderr, "dtmsched bench record: -ledger is required\n%s\n", benchUsage)
		return 2
	}
	cells := benchSuite(*suite)
	if cells == nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench record: unknown suite %q (want quick or smoke)\n", *suite)
		return 2
	}
	rootSeed := *seed
	if rootSeed == 0 {
		rootSeed = xrand.DefaultSeed
	}

	var jobs []engine.Job
	for _, c := range cells {
		topo := c.mk()
		g := topo.Graph()
		for trial := 0; trial < *trials; trial++ {
			// One scheduler per job: the randomized schedulers hold their
			// own RNG, so sharing one across concurrent trials would race.
			sched, err := traceScheduler("auto", topo, xrand.Derive(rootSeed, "bench", c.name, fmt.Sprint(trial)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dtmsched bench record: %s: %v\n", c.name, err)
				return 2
			}
			in := tm.UniformK(c.w, c.k).Generate(
				xrand.NewDerived(rootSeed, "bench", c.name, fmt.Sprint(trial)),
				g, graph.FuncMetric(topo.Dist), g.Nodes(), tm.PlaceAtRandomUser)
			jobs = append(jobs, engine.Job{
				Name:      fmt.Sprintf("bench/%s#%d", c.name, trial),
				Instance:  in,
				Scheduler: sched,
			})
		}
	}

	f, err := os.OpenFile(*ledgerPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench record: %v\n", err)
		return 2
	}
	ledger := obs.NewLedger(f)
	base := obs.RunRecord{
		Config: map[string]string{
			"suite":  *suite,
			"seed":   fmt.Sprint(rootSeed),
			"trials": fmt.Sprint(*trials),
		},
		Seed: rootSeed,
	}
	results, err := engine.RunBatch(context.Background(), jobs, engine.Options{
		Workers: *workers,
		Hook:    engine.LedgerHook(ledger, base),
	})
	if err == nil {
		_, err = engine.Reports(results)
	}
	if err == nil {
		err = ledger.Err()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench record: %v\n", err)
		return 1
	}
	fmt.Printf("recorded %d run-ledger records to %s (suite %s, %d trials, seed %d)\n",
		len(jobs), *ledgerPath, *suite, *trials, rootSeed)
	return 0
}

// benchCompare implements `dtmsched bench compare` and `... gate`: read
// two ledgers, judge new against old, and render the report. compare
// always exits 0 on a well-formed comparison; gate exits 1 when any
// metric regressed.
func benchCompare(args []string, gate bool) int {
	name := "compare"
	if gate {
		name = "gate"
	}
	fs := flag.NewFlagSet("dtmsched bench "+name, flag.ExitOnError)
	var (
		asJSON  = fs.Bool("json", false, "emit the report as JSON instead of text")
		timeTh  = fs.Float64("time-threshold", 0, "allowed relative increase on wall-time metrics (0 = default 0.30)")
		countTh = fs.Float64("count-threshold", 0, "allowed relative change on deterministic counters (default 0 = exact reproduction)")
		minMS   = fs.Float64("min-ms", 0, "absolute wall-time noise floor in milliseconds (0 = default 1)")
		madF    = fs.Float64("mad-factor", 0, "MAD noise-floor multiplier for wall-time metrics (0 = default 3)")
	)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fmt.Fprintf(os.Stderr, "dtmsched bench %s: want exactly OLD and NEW ledger paths, got %d args\n%s\n",
			name, len(rest), benchUsage)
		return 2
	}
	oldRecs, err := obs.ReadLedgerFile(rest[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench %s: %v\n", name, err)
		return 2
	}
	newRecs, err := obs.ReadLedgerFile(rest[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench %s: %v\n", name, err)
		return 2
	}
	rep := obs.Compare(oldRecs, newRecs, obs.Thresholds{
		Time: *timeTh, Count: *countTh, MADFactor: *madF, MinTimeMS: *minMS,
	})
	if *asJSON {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmsched bench %s: %v\n", name, err)
		return 2
	}
	if gate && !rep.Pass() {
		return 1
	}
	return 0
}
