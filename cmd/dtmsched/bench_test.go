package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtmsched/internal/obs"
)

// writeTestLedger writes a 3-trial synthetic ledger whose measure stage
// takes stageMS milliseconds.
func writeTestLedger(t *testing.T, path string, stageMS float64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l := obs.NewLedger(f)
	for trial := 0; trial < 3; trial++ {
		rec := obs.RunRecord{
			Experiment: "bench/x", Config: map[string]string{"suite": "t"}, Trial: trial,
			StageMS:  map[string]float64{"measure": stageMS},
			TotalMS:  stageMS + 2,
			SimSteps: 100, ObjectMoves: 300, Executed: 10, Makespan: 100,
			LatencyP50: 3, LatencyP99: 9,
		}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBenchGate is the end-to-end gate self-test: identical ledgers exit
// 0, an injected 2× stage-time slowdown exits 1, compare never gates,
// and usage or IO mistakes exit 2.
func TestBenchGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	same := filepath.Join(dir, "same.jsonl")
	slow := filepath.Join(dir, "slow.jsonl")
	writeTestLedger(t, base, 10)
	writeTestLedger(t, same, 10)
	writeTestLedger(t, slow, 20)

	if code := runBenchCmd([]string{"gate", base, same}); code != 0 {
		t.Errorf("gate on identical ledgers exited %d, want 0", code)
	}
	if code := runBenchCmd([]string{"gate", base, slow}); code != 1 {
		t.Errorf("gate on a 2x slowdown exited %d, want 1", code)
	}
	if code := runBenchCmd([]string{"compare", base, slow}); code != 0 {
		t.Errorf("compare must report without gating; exited %d, want 0", code)
	}
	if code := runBenchCmd([]string{"gate", "-json", base, slow}); code != 1 {
		t.Errorf("gate -json on a slowdown exited %d, want 1", code)
	}
	// A loose threshold lets the same slowdown through.
	if code := runBenchCmd([]string{"gate", "-time-threshold", "2.0", base, slow}); code != 0 {
		t.Errorf("gate with -time-threshold 2.0 exited %d, want 0", code)
	}

	if code := runBenchCmd([]string{"gate", base}); code != 2 {
		t.Errorf("gate with one path exited %d, want 2", code)
	}
	if code := runBenchCmd([]string{"gate", base, filepath.Join(dir, "missing.jsonl")}); code != 2 {
		t.Errorf("gate on a missing ledger exited %d, want 2", code)
	}
	if code := runBenchCmd([]string{"frobnicate"}); code != 2 {
		t.Errorf("unknown subcommand exited %d, want 2", code)
	}
	if code := runBenchCmd(nil); code != 2 {
		t.Errorf("bare bench exited %d, want 2", code)
	}
}

// TestBenchRecordSmoke runs the in-process record path on the smoke
// suite and gates the resulting ledger against itself.
func TestBenchRecordSmoke(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "smoke.jsonl")
	if code := runBenchCmd([]string{"record", "-ledger", ledger, "-suite", "smoke", "-trials", "1"}); code != 0 {
		t.Fatalf("record exited %d, want 0", code)
	}
	recs, err := obs.ReadLedgerFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("smoke suite wrote %d records, want 2 (one per cell)", len(recs))
	}
	for _, r := range recs {
		if r.Config["suite"] != "smoke" || r.Config["job"] == "" {
			t.Errorf("record config = %v, want suite and job", r.Config)
		}
		if r.Makespan <= 0 || r.SimSteps <= 0 {
			t.Errorf("record %s carries no measurements: %+v", r.Experiment, r)
		}
	}
	if code := runBenchCmd([]string{"gate", ledger, ledger}); code != 0 {
		t.Errorf("gating a ledger against itself exited %d, want 0", code)
	}

	if code := runBenchCmd([]string{"record", "-ledger", ledger, "-suite", "nope"}); code != 2 {
		t.Errorf("unknown suite exited %d, want 2", code)
	}
	if code := runBenchCmd([]string{"record", "-suite", "smoke"}); code != 2 {
		t.Errorf("record without -ledger exited %d, want 2", code)
	}
}
