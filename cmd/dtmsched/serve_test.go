package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtmsched/internal/obs"
)

// TestServeSmoke drains a short seeded stream through the in-process
// serve command, then checks the ledger record it appends (stream
// counters, window-latency distribution) and the Prometheus exposition
// it dumps, and gates the ledger against itself.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "serve.jsonl")
	prom := filepath.Join(dir, "serve.prom")

	args := []string{"-topo", "line", "-n", "12", "-w", "4", "-rate", "0.6",
		"-txns", "120", "-window", "4", "-queue", "6", "-policy", "reject",
		"-seed", "7", "-ledger", ledger, "-prom", prom}
	if err := runServeCmd(args); err != nil {
		t.Fatal(err)
	}
	// Same flags, same seed: the second run must append a record with an
	// identical fingerprint and identical deterministic counters.
	if err := runServeCmd(args); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadLedgerFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("two serve runs wrote %d records, want 2", len(recs))
	}
	a, b := recs[0], recs[1]
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same flags, different fingerprints: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.StreamAdmitted != b.StreamAdmitted || a.StreamRejected != b.StreamRejected ||
		a.StreamWindows != b.StreamWindows || a.Executed != b.Executed {
		t.Errorf("same seed, different stream counters:\n%+v\n%+v", a, b)
	}
	if a.StreamAdmitted == 0 || a.StreamAdmitted != a.Executed {
		t.Errorf("admitted %d must be nonzero and equal committed %d", a.StreamAdmitted, a.Executed)
	}
	if a.StreamWindows < 2 || a.StreamQueuePeak < 1 || a.StreamQueuePeak > 6 {
		t.Errorf("implausible stream shape: %+v", a)
	}
	if a.WindowLatency == nil || a.WindowLatency.Count != a.StreamWindows {
		t.Errorf("window latency distribution missing or mismatched: %+v", a.WindowLatency)
	}
	if a.Latency == nil || a.Latency.Count != a.Executed || a.LatencyP99 < a.LatencyP50 {
		t.Errorf("response distribution missing or mismatched: %+v p50=%d p99=%d",
			a.Latency, a.LatencyP50, a.LatencyP99)
	}

	if code := runBenchCmd([]string{"gate", ledger, ledger}); code != 0 {
		t.Errorf("gating a serve ledger against itself exited %d, want 0", code)
	}

	text, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"stream_admitted_total", "stream_rejected_total",
		"stream_committed_total", "stream_windows_total", "stream_queue_depth_peak",
		"stream_window_latency_steps_bucket", "stream_txn_response_steps_bucket"} {
		if !strings.Contains(string(text), metric) {
			t.Errorf("prom exposition missing %s", metric)
		}
	}
}

// TestServeChaosSmoke runs the serve command under chaos injection twice
// with one seed and checks the run is deterministic, the health layer
// engages, and the ledger record carries the fault counters with a
// fingerprint distinct from the fault-free run of the same flags.
func TestServeChaosSmoke(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "chaos.jsonl")
	base := []string{"-topo", "clique", "-n", "12", "-w", "6", "-rate", "1.2",
		"-txns", "150", "-window", "6", "-queue", "12", "-policy", "block",
		"-seed", "7", "-ledger", ledger}
	chaos := append(append([]string{}, base...), "-faults", "0.25,99")
	if err := runServeCmd(chaos); err != nil {
		t.Fatal(err)
	}
	if err := runServeCmd(chaos); err != nil {
		t.Fatal(err)
	}
	if err := runServeCmd(base); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedgerFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	a, b, clean := recs[0], recs[1], recs[2]
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same chaos flags, different fingerprints: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.StreamRequeued != b.StreamRequeued || a.StreamShed != b.StreamShed ||
		a.StreamAdmitted != b.StreamAdmitted || a.StreamInflation != b.StreamInflation {
		t.Errorf("chaos run not deterministic:\n%+v\n%+v", a, b)
	}
	if a.StreamRequeued == 0 {
		t.Errorf("25%% chaos never requeued a transaction: %+v", a)
	}
	if a.StreamAdmitted != a.Executed+a.StreamShed {
		t.Errorf("admitted %d != committed %d + shed %d", a.StreamAdmitted, a.Executed, a.StreamShed)
	}
	if clean.Fingerprint == a.Fingerprint {
		t.Error("chaos and fault-free runs share a ledger fingerprint")
	}
	if clean.StreamRequeued != 0 || clean.StreamShed != 0 || clean.StreamInflation != 0 {
		t.Errorf("fault-free record carries fault counters: %+v", clean)
	}
	if code := runBenchCmd([]string{"gate", ledger, ledger}); code != 0 {
		t.Errorf("gating the chaos ledger against itself exited %d, want 0", code)
	}
}

// TestServeFlagErrors covers the flag validation paths.
func TestServeFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"topo":     {"-topo", "mobius"},
		"workload": {"-workload", "nope"},
		"policy":   {"-policy", "drop"},
		"verify":   {"-verify", "maybe"},
		"faults":   {"-faults", "1.5"},
		"faults2":  {"-faults", "0.1,zz"},
		"shed":     {"-shed", "-1"},
	} {
		if err := runServeCmd(append(args, "-txns", "5")); err == nil {
			t.Errorf("%s: bad flag accepted", name)
		}
	}
}
