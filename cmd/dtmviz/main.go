// Command dtmviz renders the paper's figures (1–6) as ASCII drawings and,
// optionally, a Gantt chart of a freshly scheduled instance.
//
// Usage:
//
//	dtmviz -fig N          render paper figure N (1–6)
//	dtmviz -fig all        render every figure
//	dtmviz -gantt clique   schedule a small instance and draw it
package main

import (
	"flag"
	"fmt"
	"os"

	"dtmsched/internal/asciiviz"
	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func main() {
	var (
		fig   = flag.String("fig", "", "paper figure to render: 1..6 or 'all'")
		gantt = flag.String("gantt", "", "draw a schedule on: clique|line|grid|cluster|star")
		dot   = flag.String("dot", "", "emit Graphviz DOT for a topology: clique|line|grid|cluster|star|hypercube|butterfly")
		n     = flag.Int("n", 16, "instance size parameter for -gantt/-dot")
	)
	flag.Parse()
	if *fig == "" && *gantt == "" && *dot == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *dot != "" {
		if err := emitDOT(*dot, *n); err != nil {
			fmt.Fprintf(os.Stderr, "dtmviz: %v\n", err)
			os.Exit(1)
		}
	}

	figs := map[string]func() string{
		// Figure 1: line with n=32, ℓ=8 (paper's exact parameters).
		"1": func() string { return asciiviz.Line(32, 8) },
		// Figure 2: 16×16 grid with 4×4 subgrids.
		"2": func() string { return asciiviz.GridSnake(16, 4) },
		// Figure 3: 5 clusters of 6 nodes.
		"3": func() string { return asciiviz.Cluster(5, 6, 12) },
		// Figure 4: 8 rays of 7 nodes with segment rings.
		"4": func() string { return asciiviz.Star(8, 7) },
		// Figure 5: lower-bound grid blocks.
		"5": func() string { return asciiviz.Blocks(16, false) },
		// Figure 6: lower-bound tree blocks.
		"6": func() string { return asciiviz.Blocks(16, true) },
	}
	if *fig == "all" {
		for _, id := range []string{"1", "2", "3", "4", "5", "6"} {
			fmt.Printf("——— Figure %s ———\n%s\n", id, figs[id]())
		}
	} else if *fig != "" {
		render, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "dtmviz: unknown figure %q (want 1-6 or all)\n", *fig)
			os.Exit(2)
		}
		fmt.Print(render())
	}

	if *gantt != "" {
		if err := drawGantt(*gantt, *n); err != nil {
			fmt.Fprintf(os.Stderr, "dtmviz: %v\n", err)
			os.Exit(1)
		}
	}
}

func drawGantt(kind string, n int) error {
	rng := xrand.New(xrand.DefaultSeed)
	w, k := maxOf(n/2, 2), 2
	wl := tm.UniformK(w, k)
	var in *tm.Instance
	var sched core.Scheduler
	switch kind {
	case "clique":
		t := topology.NewClique(n)
		in = wl.Generate(rng, t.Graph(), nil, t.Graph().Nodes(), tm.PlaceAtRandomUser)
		sched = &core.Greedy{}
	case "line":
		t := topology.NewLine(n)
		in = wl.Generate(rng, t.Graph(), nil, t.Graph().Nodes(), tm.PlaceAtRandomUser)
		sched = &core.Line{Topo: t}
	case "grid":
		side := 4
		for side*side < n {
			side++
		}
		t := topology.NewSquareGrid(side)
		in = wl.Generate(rng, t.Graph(), nil, t.Graph().Nodes(), tm.PlaceAtRandomUser)
		sched = &core.Grid{Topo: t}
	case "cluster":
		t := topology.NewCluster(4, maxOf(n/4, 2), int64(maxOf(n/2, 4)))
		in = wl.Generate(rng, t.Graph(), nil, t.Graph().Nodes(), tm.PlaceAtRandomUser)
		sched = &core.Cluster{Topo: t, Rng: rng}
	case "star":
		t := topology.NewStar(4, maxOf(n/4, 2))
		in = wl.Generate(rng, t.Graph(), nil, t.Graph().Nodes(), tm.PlaceAtRandomUser)
		sched = &core.Star{Topo: t, Rng: rng}
	default:
		return fmt.Errorf("unknown gantt topology %q", kind)
	}
	res, err := sched.Schedule(in)
	if err != nil {
		return err
	}
	fmt.Print(asciiviz.Gantt(in, res.Schedule, 128, 200))
	fmt.Println()
	for o := 0; o < minOf(in.NumObjects, 4); o++ {
		fmt.Print(asciiviz.ObjectJourney(in, res.Schedule, tm.ObjectID(o)))
	}
	return nil
}

// emitDOT prints a topology's graph in Graphviz format.
func emitDOT(kind string, n int) error {
	var g interface{ Graph() *graph.Graph }
	switch kind {
	case "clique":
		g = topology.NewClique(n)
	case "line":
		g = topology.NewLine(n)
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		g = topology.NewSquareGrid(side)
	case "cluster":
		g = topology.NewCluster(4, maxOf(n/4, 2), int64(maxOf(n/2, 4)))
	case "star":
		g = topology.NewStar(4, maxOf(n/4, 2))
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		g = topology.NewHypercube(d)
	case "butterfly":
		g = topology.NewButterfly(3)
	default:
		return fmt.Errorf("unknown topology %q for -dot", kind)
	}
	fmt.Print(g.Graph().DOT())
	return nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minOf(a, b int) int {
	if a < b {
		return a
	}
	return b
}
