package dtmsched_test

// One benchmark per experiment (E1–E11, the reproduction's tables), plus
// micro-benchmarks of the load-bearing primitives (dependency-graph
// coloring, the schedulers themselves, the simulator, shortest paths).
//
// The experiment benchmarks run their full quick-mode sweep per iteration,
// so ns/op is "time to regenerate the table". Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	dtm "dtmsched"
	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/depgraph"
	"dtmsched/internal/experiments"
	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.DefaultConfig()
	cfg.Quick = true
	cfg.Trials = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if failed := res.Failed(); len(failed) > 0 {
			b.Fatalf("%s: %d shape checks failed: %+v", id, len(failed), failed[0])
		}
	}
}

// BenchmarkE1Clique regenerates Theorem 1's table (clique, O(k)).
func BenchmarkE1Clique(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Hypercube regenerates the Section 3.1 hypercube table.
func BenchmarkE2Hypercube(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Butterfly regenerates the Section 3.1 butterfly table.
func BenchmarkE3Butterfly(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Line regenerates Theorem 2's table (line, ≤ 4ℓ−2).
func BenchmarkE4Line(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Grid regenerates Theorem 3's table (grid, O(k log m)).
func BenchmarkE5Grid(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Cluster regenerates Theorem 4's table (cluster approaches).
func BenchmarkE6Cluster(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Star regenerates Theorem 5's table (star segments).
func BenchmarkE7Star(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8LBGrid regenerates the Theorem 6 / Corollary 3 grid table.
func BenchmarkE8LBGrid(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9LBTree regenerates the Section 8.2 tree table.
func BenchmarkE9LBTree(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Baselines regenerates the scheduler-vs-baselines table.
func BenchmarkE10Baselines(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11TileSize regenerates the grid tile-size ablation.
func BenchmarkE11TileSize(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Online regenerates the online-scheduling extension table.
func BenchmarkE12Online(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Congestion regenerates the bounded-capacity extension table.
func BenchmarkE13Congestion(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Replication regenerates the replication extension table.
func BenchmarkE14Replication(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15ExactGroundTruth regenerates the greedy-vs-optimal table.
func BenchmarkE15ExactGroundTruth(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16ColoringOrder regenerates the coloring-order ablation.
func BenchmarkE16ColoringOrder(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Asynchrony regenerates the synchronicity-factor table.
func BenchmarkE17Asynchrony(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Tradeoff regenerates the time-vs-communication frontier.
func BenchmarkE18Tradeoff(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19MultiWindow regenerates the barrier-vs-pipelined table.
func BenchmarkE19MultiWindow(b *testing.B) { benchExperiment(b, "E19") }

// —— micro-benchmarks ————————————————————————————————————————————————

func cliqueInstance(n, w, k int) *tm.Instance {
	topo := topology.NewClique(n)
	return tm.UniformK(w, k).Generate(xrand.New(1), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
}

// cliqueMetricInstance builds an n-transaction instance on a sparse path
// graph with a unit ("clique") metric, so build benchmarks scale to 10k
// transactions without materializing a clique's O(n²) topology edges.
func cliqueMetricInstance(n, w, k int) *tm.Instance {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	metric := graph.FuncMetric(func(u, v graph.NodeID) int64 {
		if u == v {
			return 0
		}
		return 1
	})
	return tm.UniformK(w, k).Generate(xrand.New(1), g, metric, g.Nodes(), tm.PlaceAtRandomUser)
}

// BenchmarkDepGraphBuild measures the two-pass CSR conflict-graph build at
// 1k and 10k transactions against the retired map-of-maps builder (kept as
// BuildReference). The workers=8 sub-benchmark is the acceptance bar for
// the parallel build: ≥2× over mapref on the 10k instance.
func BenchmarkDepGraphBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		in := cliqueMetricInstance(n, n/4, 2)
		in.Index() // warm the shared conflict index: benchmark the build, not indexing
		b.Run(fmt.Sprintf("n=%d/mapref", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				depgraph.BuildReference(in, nil)
			}
		})
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					depgraph.BuildOpts(in, nil, depgraph.Options{Workers: workers})
				}
			})
		}
	}
}

func BenchmarkGreedyColor(b *testing.B) {
	for _, n := range []int{128, 512} {
		in := cliqueInstance(n, n/4, 2)
		h := depgraph.Build(in, nil)
		order := h.OrderByNode(in)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.GreedyColor(order)
			}
		})
	}
}

func BenchmarkGreedySchedulerClique(b *testing.B) {
	for _, n := range []int{128, 512} {
		in := cliqueInstance(n, n/4, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (&core.Greedy{}).Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGridScheduler(b *testing.B) {
	for _, side := range []int{16, 32} {
		topo := topology.NewSquareGrid(side)
		in := tm.UniformK(4*side, 2).Generate(xrand.New(1), topo.Graph(),
			graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		b.Run(fmt.Sprintf("side=%d", side), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (&core.Grid{Topo: topo}).Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClusterApproach2(b *testing.B) {
	topo := topology.NewCluster(8, 16, 32)
	in := tm.UniformK(32, 2).Generate(xrand.New(1), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs := &core.Cluster{Topo: topo, Rng: xrand.New(int64(i)), Approach: core.ClusterApproach2}
		if _, err := cs.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator(b *testing.B) {
	in := cliqueInstance(512, 128, 2)
	res, err := (&core.Greedy{}).Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(in, res.Schedule, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	in := cliqueInstance(256, 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lower.Compute(in)
	}
}

// BenchmarkLowerCompute compares the certified-bound cost tiers on one
// instance: the serial witness computation, the worker-pooled variant,
// and a warm oracle hit (the steady state of batch sweeps, where jobs
// sharing an instance pay a pointer load).
func BenchmarkLowerCompute(b *testing.B) {
	in := cliqueInstance(256, 64, 2)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lower.ComputeOpts(in, lower.Options{Witness: true})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lower.ComputeOpts(in, lower.Options{Workers: 4, Witness: true})
		}
	})
	b.Run("oracle-warm", func(b *testing.B) {
		o := lower.NewOracle(lower.Options{Witness: true})
		o.Get(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Get(in)
		}
	})
}

func BenchmarkBaselineList(b *testing.B) {
	in := cliqueInstance(512, 128, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (baseline.List{}).Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPathsGrid(b *testing.B) {
	topo := topology.NewSquareGrid(64)
	g := topo.Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(graph.NodeID(i % g.NumNodes()))
	}
}

func BenchmarkFacadeEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := dtm.NewCliqueSystem(128, dtm.Uniform(32, 2), dtm.Seed(int64(i)))
		if _, err := sys.Run(dtm.AlgGreedy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePipeline runs the full engine pipeline under each verify
// policy, reporting the simulator work the VerifyFull path performs
// (simsteps/op, objmoves/op) so regressions in verification cost are
// visible next to the wall-clock difference between policies.
func BenchmarkEnginePipeline(b *testing.B) {
	for _, mode := range []dtm.VerifyMode{dtm.VerifyFull, dtm.VerifyFast, dtm.VerifyOff} {
		sys := dtm.NewCliqueSystem(256, dtm.Uniform(64, 2), dtm.Seed(1))
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var steps, moves int64
			for i := 0; i < b.N; i++ {
				rep, err := sys.RunContext(context.Background(), dtm.AlgGreedy, mode)
				if err != nil {
					b.Fatal(err)
				}
				steps += rep.Counters.SimSteps
				moves += rep.Counters.ObjectMoves
			}
			b.ReportMetric(float64(steps)/float64(b.N), "simsteps/op")
			b.ReportMetric(float64(moves)/float64(b.N), "objmoves/op")
		})
	}
}

// BenchmarkRunBatch measures batch throughput across worker counts: the
// same 16-job multi-algorithm comparison fanned over 1, 4, and 8 workers.
func BenchmarkRunBatch(b *testing.B) {
	sys := dtm.NewCliqueSystem(128, dtm.Uniform(32, 2), dtm.Seed(2))
	algs := []dtm.Algorithm{dtm.AlgGreedy, dtm.AlgSequential, dtm.AlgList, dtm.AlgRandomOrder}
	jobs := make([]dtm.BatchJob, 0, 16)
	for rep := 0; rep < 4; rep++ {
		for _, alg := range algs {
			jobs = append(jobs, dtm.BatchJob{Name: fmt.Sprintf("%s/%d", alg, rep), System: sys, Alg: alg})
		}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := dtm.RunBatch(context.Background(), jobs, dtm.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
