module dtmsched

go 1.22
